package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"powercap/internal/baseline"
	"powercap/internal/cluster"
	"powercap/internal/diba"
	"powercap/internal/metrics"
	"powercap/internal/netsim"
	"powercap/internal/parallel"
	"powercap/internal/solver"
	"powercap/internal/stats"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Fig42 reproduces Fig. 4.2: the normalized throughput functions of four
// representative workloads over the server's power range.
func Fig42() (Table, error) {
	names := []string{"EP", "CG", "LU", "RA"}
	t := Table{
		ID:      "fig4.2",
		Title:   "Normalized throughput functions of 4 workloads",
		Columns: append([]string{"power (W)"}, names...),
		Notes: []string{
			"expected shape: all concave non-decreasing; compute-bound EP keeps gaining, memory-bound RA saturates early",
		},
	}
	s := workload.DefaultServer
	utils := make([]workload.Quadratic, len(names))
	for i, n := range names {
		b, err := workload.ByName(workload.HPC, n)
		if err != nil {
			return Table{}, err
		}
		utils[i] = workload.TrueUtility(b, s)
	}
	for p := s.IdleWatts; p <= s.MaxWatts+1e-9; p += 10 {
		row := []interface{}{p}
		for _, u := range utils {
			row = append(row, u.Value(p)/u.Peak())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig43 reproduces Fig. 4.3: SNP of the cluster under total budgets
// 166–186 kW (scaled per node) for uniform, primal-dual, DiBA and the
// centralized optimum.
func Fig43(scale Scale, seed int64) (Table, error) {
	n := scale.pick(200, 1000)
	t := Table{
		ID:    "fig4.3",
		Title: fmt.Sprintf("SNP of %d servers under different power budgets", n),
		Columns: []string{"budget (kW)", "uniform", "primal-dual", "DiBA", "optimal",
			"PD gain %", "DiBA gain %"},
		Notes: []string{
			"expected shape: PD ≈ DiBA ≈ optimal, ≈14.5% mean SNP gain over uniform, gap shrinking as budget grows (paper: 22.6% → 8.2%)",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0.01, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()

	// The budget sweep points are independent (they share only the
	// read-only utility slice), so fan them across workers and emit rows in
	// sweep order afterwards.
	var budgets []float64
	for per := 166.0; per <= 186.0+1e-9; per += 4 {
		budgets = append(budgets, per*float64(n))
	}
	type fig43Row struct {
		uniSNP, pdSNP, diSNP, optSNP float64
		pdGain, diGain               float64
	}
	rows := make([]fig43Row, len(budgets))
	err = parallel.ForEach(len(budgets), func(k int) error {
		budget := budgets[k]
		uni, err := baseline.Uniform(us, budget)
		if err != nil {
			return err
		}
		uniRep, err := metrics.Evaluate(us, uni, metrics.Arithmetic)
		if err != nil {
			return err
		}
		pd, err := baseline.PrimalDual(us, budget, baseline.PDOptions{})
		if err != nil {
			return err
		}
		pdRep, err := metrics.Evaluate(us, pd.Alloc, metrics.Arithmetic)
		if err != nil {
			return err
		}
		opt, err := solver.Optimal(us, budget)
		if err != nil {
			return err
		}
		optRep, err := metrics.Evaluate(us, opt.Alloc, metrics.Arithmetic)
		if err != nil {
			return err
		}
		en, err := diba.New(topology.Ring(n), us, budget, diba.Config{})
		if err != nil {
			return err
		}
		en.RunToTarget(opt.Utility, 0.995, scale.pick(3000, 20000))
		diRep, err := metrics.Evaluate(us, en.Alloc(), metrics.Arithmetic)
		if err != nil {
			return err
		}
		rows[k] = fig43Row{
			uniSNP: uniRep.SNP, pdSNP: pdRep.SNP, diSNP: diRep.SNP, optSNP: optRep.SNP,
			pdGain: 100 * (pdRep.SNP - uniRep.SNP) / uniRep.SNP,
			diGain: 100 * (diRep.SNP - uniRep.SNP) / uniRep.SNP,
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	var pdGains, dibaGains []float64
	for k, budget := range budgets {
		r := rows[k]
		pdGains = append(pdGains, r.pdGain)
		dibaGains = append(dibaGains, r.diGain)
		t.AddRow(budget/1000, r.uniSNP, r.pdSNP, r.diSNP, r.optSNP, r.pdGain, r.diGain)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured mean gain over uniform: PD %.1f%%, DiBA %.1f%% (paper: 14.7%% / 14.5%%)",
		stats.Mean(pdGains), stats.Mean(dibaGains)))
	return t, nil
}

// Table42 reproduces Table 4.2: computation and communication time of the
// centralized, primal-dual and DiBA schemes across cluster sizes, using
// measured computation times and the Section 4.4 network model.
func Table42(scale Scale, seed int64) (Table, error) {
	var ns []int
	if scale == Full {
		ns = []int{400, 800, 1600, 3200, 6400}
	} else {
		ns = []int{400, 800, 1600}
	}
	t := Table{
		ID:    "table4.2",
		Title: "Algorithm runtime breakdown (comp/comm, ms) vs cluster size",
		Columns: []string{"# nodes", "cent comp", "cent comm", "cent comm p95", "pd comp", "pd comm",
			"diba comp", "diba comm", "pd iters", "diba iters"},
		Notes: []string{
			"expected shape: centralized comp grows with N; PD comm grows ~linearly in N and dominates; DiBA comm flat in N and smallest at scale",
			"cent comm p95 samples the coordinator queue with Poisson per-packet service (Section 4.4.1's model); jitter grows with N too",
			"absolute centralized comp is far below the paper's CVX times — the oracle here is an exact bisection, not an interior-point solver",
		},
	}
	// Each cluster size is independent, with its own RNG (seed + index).
	// The comp columns are wall-clock measurements, so running sizes
	// concurrently trades some timing fidelity for throughput; the modeled
	// comm columns and iteration counts stay deterministic regardless.
	type table42Row struct {
		centComp, centComm, centP95 time.Duration
		pdComp, pdComm              time.Duration
		dibaComp, dibaComm          time.Duration
		pdIters, dibaIters          int
	}
	rows := make([]table42Row, len(ns))
	err := parallel.ForEach(len(ns), func(k int) error {
		n := ns[k]
		rng := rand.New(rand.NewSource(seed + int64(k)))
		a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0.01, rng)
		if err != nil {
			return err
		}
		us := a.UtilitySlice()
		budget := 170.0 * float64(n)

		// Centralized: measure the solve, one gather/scatter round of comm.
		start := time.Now()
		opt, err := solver.Optimal(us, budget)
		if err != nil {
			return err
		}
		centComp := time.Since(start)
		centComm := netsim.Measured.CentralizedRound(n)
		commStats, err := netsim.Measured.GatherScatter(n, 100, rng)
		if err != nil {
			return err
		}

		// Primal-dual: measure per-iteration local computation (all nodes in
		// parallel → per-node cost), comm = iters × serial coordinator round.
		start = time.Now()
		pd, err := baseline.PrimalDual(us, budget, baseline.PDOptions{})
		if err != nil {
			return err
		}
		pdWall := time.Since(start)
		// The measured wall time covers all nodes sequentially; a node's
		// share is 1/n of each iteration's response sweep.
		pdComp := time.Duration(float64(pdWall) / float64(n) * float64(pd.Iterations) / float64(pd.Iterations+1))
		pdComm := netsim.Measured.PDTotal(n, pd.Iterations)

		// DiBA: run to the 99% criterion, measure per-node per-round cost.
		en, err := diba.New(topology.Ring(n), us, budget, diba.Config{})
		if err != nil {
			return err
		}
		start = time.Now()
		res := en.RunToTarget(opt.Utility, 0.99, 30000)
		diWall := time.Since(start)
		iters := res.Iterations
		if iters == 0 {
			iters = 1
		}
		rows[k] = table42Row{
			centComp: centComp, centComm: centComm, centP95: commStats.P95,
			pdComp: pdComp, pdComm: pdComm,
			dibaComp: time.Duration(float64(diWall) / float64(n)), // per node, all rounds
			dibaComm: netsim.Measured.DiBATotal(iters),
			pdIters:  pd.Iterations, dibaIters: iters,
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	for k, n := range ns {
		r := rows[k]
		t.AddRow(n,
			fmt.Sprintf("%.2f", netsim.Millis(r.centComp)),
			fmt.Sprintf("%.2f", netsim.Millis(r.centComm)),
			fmt.Sprintf("%.2f", netsim.Millis(r.centP95)),
			fmt.Sprintf("%.3f", netsim.Millis(r.pdComp)),
			fmt.Sprintf("%.1f", netsim.Millis(r.pdComm)),
			fmt.Sprintf("%.3f", netsim.Millis(r.dibaComp)),
			fmt.Sprintf("%.1f", netsim.Millis(r.dibaComm)),
			r.pdIters, r.dibaIters)
	}
	return t, nil
}

// Fig44 reproduces Fig. 4.4: DiBA tracking a total power budget that
// changes every simulated minute, without ever violating it.
func Fig44(scale Scale, seed int64) (Table, error) {
	n := scale.pick(200, 1000)
	perNode := []float64{182, 170, 188, 174, 166, 180, 172, 186, 168, 178}
	minutes := scale.pick(4, 10)
	sim, err := cluster.NewSim(cluster.Config{N: n, Seed: seed}, perNode[0]*float64(n))
	if err != nil {
		return Table{}, err
	}
	var events []cluster.BudgetEvent
	for m := 1; m < minutes; m++ {
		events = append(events, cluster.BudgetEvent{AtSecond: m * 60, Budget: perNode[m%len(perNode)] * float64(n)})
	}
	samples, err := sim.Run(minutes*60, events)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig4.4",
		Title:   fmt.Sprintf("Dynamic budget reallocation, %d servers, budget changes each minute", n),
		Columns: []string{"t (s)", "budget (kW)", "power (kW)", "SNP", "opt SNP"},
		Notes:   []string{"expected shape: power tracks each new budget without violation; SNP stays near optimal"},
	}
	violations := 0
	for _, s := range samples {
		if s.Power > s.Budget+1e-6 {
			violations++
		}
		if s.Second%20 == 0 {
			t.AddRow(s.Second, s.Budget/1000, s.Power/1000, s.SNP, s.OptSNP)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("budget violations across %d samples: %d (must be 0)", len(samples), violations))
	return t, nil
}

// stepResponse produces the per-round detail of a budget step (shared by
// Fig45 and Fig46).
func stepResponse(id, title string, fromPer, toPer float64, scale Scale, seed int64) (Table, error) {
	n := scale.pick(200, 1000)
	sim, err := cluster.NewSim(cluster.Config{N: n, Seed: seed}, fromPer*float64(n))
	if err != nil {
		return Table{}, err
	}
	if _, err := sim.Run(scale.pick(10, 30), nil); err != nil {
		return Table{}, err
	}
	if err := sim.SetBudget(toPer * float64(n)); err != nil {
		return Table{}, err
	}
	trace := sim.Trace(scale.pick(300, 1000))
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("%s (%d servers, %.0f→%.0f W/node)", title, n, fromPer, toPer),
		Columns: []string{"round", "power (kW)", "utility", "budget (kW)"},
	}
	for _, r := range trace {
		if r.Round <= 10 || r.Round%25 == 0 {
			t.AddRow(r.Round, r.Power/1000, r.Utility, r.Budget/1000)
		}
	}
	for _, r := range trace {
		if r.Power > r.Budget+1e-6 {
			t.Notes = append(t.Notes, fmt.Sprintf("VIOLATION at round %d", r.Round))
		}
	}
	return t, nil
}

// Fig45 reproduces Fig. 4.5: the budget drops 190→170 W/node; computing
// power must fall immediately, then utility re-converges.
func Fig45(scale Scale, seed int64) (Table, error) {
	t, err := stepResponse("fig4.5", "Budget drop detail", 190, 170, scale, seed)
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes, "expected shape: power complies immediately at round 0, utility recovers over the following rounds")
	return t, nil
}

// Fig46 reproduces Fig. 4.6: the budget jumps 170→190 W/node; power ramps
// up to the new budget without overshoot.
func Fig46(scale Scale, seed int64) (Table, error) {
	t, err := stepResponse("fig4.6", "Budget jump detail", 170, 190, scale, seed)
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes, "expected shape: power ramps toward the new budget with no overshoot")
	return t, nil
}

// Fig47 reproduces Fig. 4.7: DiBA under continuous workload churn at a
// fixed budget; SNP stays near optimal, power stays under the limit.
func Fig47(scale Scale, seed int64) (Table, error) {
	n := scale.pick(200, 1000)
	minutes := scale.pick(8, 80)
	sim, err := cluster.NewSim(cluster.Config{
		N:              n,
		Seed:           seed,
		ChurnPerSecond: 1.0 / 120, // mean workload lifetime two minutes
		MeasureNoise:   0.01,
	}, 180*float64(n))
	if err != nil {
		return Table{}, err
	}
	samples, err := sim.Run(minutes*60, nil)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig4.7",
		Title:   fmt.Sprintf("DiBA with dynamic workloads, %d servers, %d min, fixed %d kW", n, minutes, int(180*float64(n)/1000)),
		Columns: []string{"t (min)", "power (kW)", "budget (kW)", "SNP", "opt SNP", "churned"},
		Notes:   []string{"expected shape: SNP close to optimal throughout; total power strictly below the limit"},
	}
	violations := 0
	var gaps []float64
	for _, s := range samples {
		if s.Power > s.Budget+1e-6 {
			violations++
		}
		if s.OptSNP > 0 {
			gaps = append(gaps, 1-s.SNP/s.OptSNP)
		}
		if s.Second%60 == 0 {
			t.AddRow(s.Second/60, s.Power/1000, s.Budget/1000, s.SNP, s.OptSNP, s.Churned)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("violations: %d (must be 0); mean SNP gap to optimal: %.2f%%", violations, 100*stats.Mean(gaps)))
	return t, nil
}

// Fig48 reproduces Fig. 4.8: after a single node's utility changes, the
// absolute estimate disturbance propagates and decays over iterations.
func Fig48(seed int64) (Table, error) {
	const n = 100
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	budget := 172.0 * n
	en, err := diba.New(topology.Ring(n), us, budget, diba.Config{})
	if err != nil {
		return Table{}, err
	}
	en.RunToQuiescence(1e-4, 30, 200000)
	base := en.Estimates()

	ra, err := workload.ByName(workload.HPC, "RA")
	if err != nil {
		return Table{}, err
	}
	if err := en.SetUtility(50, workload.TrueUtility(ra, workload.DefaultServer)); err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "fig4.8",
		Title:   "Absolute estimate disturbance after a utility change at node 50 (ring N=100)",
		Columns: []string{"iteration", "|Δe| node 50", "|Δe| dist 5", "|Δe| dist 15", "|Δe| dist 40", "Σ|Δe|"},
		Notes:   []string{"expected shape: disturbance starts at node 50, spreads to neighbors while its magnitude decays"},
	}
	marks := map[int]bool{1: true, 5: true, 10: true, 25: true, 50: true, 100: true, 250: true, 500: true, 1000: true}
	absd := func(i int) float64 {
		es := en.Estimates()
		d := es[i] - base[i]
		if d < 0 {
			d = -d
		}
		return d
	}
	for k := 1; k <= 1000; k++ {
		en.Step()
		if marks[k] {
			es := en.Estimates()
			var sum float64
			for i := range es {
				d := es[i] - base[i]
				if d < 0 {
					d = -d
				}
				sum += d
			}
			t.AddRow(k, absd(50), absd(55), absd(65), absd(90), sum)
		}
	}
	return t, nil
}

// Fig49 reproduces Fig. 4.9: the absolute power changes after settling at
// the new equilibrium are localized around the perturbed node.
func Fig49(seed int64) (Table, error) {
	const n = 100
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	budget := 172.0 * n
	en, err := diba.New(topology.Ring(n), us, budget, diba.Config{})
	if err != nil {
		return Table{}, err
	}
	en.RunToQuiescence(1e-4, 30, 200000)
	before := en.Alloc()
	ra, err := workload.ByName(workload.HPC, "RA")
	if err != nil {
		return Table{}, err
	}
	if err := en.SetUtility(50, workload.TrueUtility(ra, workload.DefaultServer)); err != nil {
		return Table{}, err
	}
	en.RunToQuiescence(1e-4, 30, 200000)
	after := en.Alloc()

	t := Table{
		ID:      "fig4.9",
		Title:   "Absolute power change per node after settling (perturbation at node 50)",
		Columns: []string{"ring distance to node 50", "mean |Δp| (W)", "max |Δp| (W)"},
		Notes:   []string{"expected shape: large change at distance 0, decaying rapidly with distance (the paper's 'local effect')"},
	}
	bands := []struct{ lo, hi int }{{0, 0}, {1, 2}, {3, 5}, {6, 10}, {11, 20}, {21, 50}}
	for _, b := range bands {
		var sum, max float64
		cnt := 0
		for i := range after {
			d := ringDist(i, 50, n)
			if d < b.lo || d > b.hi {
				continue
			}
			ad := after[i] - before[i]
			if ad < 0 {
				ad = -ad
			}
			sum += ad
			if ad > max {
				max = ad
			}
			cnt++
		}
		label := fmt.Sprintf("%d–%d", b.lo, b.hi)
		if b.lo == b.hi {
			label = fmt.Sprintf("%d", b.lo)
		}
		t.AddRow(label, sum/float64(cnt), max)
	}
	return t, nil
}

func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Fig410 reproduces Fig. 4.10: iterations to 99% of optimal on connected
// Erdős–Rényi graphs (N=100) versus average degree, with the cubic
// polynomial regression of the text.
func Fig410(scale Scale, seed int64) (Table, error) {
	const n = 100
	samplesCount := scale.pick(20, 100)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	budget := 170.0 * n
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		return Table{}, err
	}

	// Every sample draws its graph from its own RNG (seed + sample index),
	// so the sample set is fixed whatever the worker count or completion
	// order; the bins below then see identical data at any -j.
	degs := make([]float64, samplesCount)
	iters := make([]float64, samplesCount)
	err = parallel.ForEach(samplesCount, func(k int) error {
		srng := rand.New(rand.NewSource(seed + int64(k)))
		// Vary edge counts from barely connected to dense.
		m := n + srng.Intn(5*n)
		g := topology.ConnectedErdosRenyi(n, m, srng)
		en, err := diba.New(g, us, budget, diba.Config{})
		if err != nil {
			return err
		}
		res := en.RunToTarget(opt.Utility, 0.99, 30000)
		degs[k] = g.AvgDegree()
		iters[k] = float64(res.Iterations)
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	coefs, err := stats.PolyFit(degs, iters, 3)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig4.10",
		Title:   fmt.Sprintf("Iterations to 99%% vs average degree, %d connected ER graphs (N=100)", samplesCount),
		Columns: []string{"avg degree (bin)", "mean iterations", "min", "max", "samples"},
		Notes: []string{
			"expected shape: iterations decrease as average degree grows",
			fmt.Sprintf("cubic regression: iters ≈ %.1f + %.1f·d + %.2f·d² + %.3f·d³", coefs[0], coefs[1], coefs[2], coefs[3]),
		},
	}
	lo, hi := stats.Min(degs), stats.Max(degs)
	const bins = 6
	width := (hi - lo) / bins
	for b := 0; b < bins; b++ {
		blo, bhi := lo+float64(b)*width, lo+float64(b+1)*width
		var vals []float64
		for i, d := range degs {
			if d >= blo && (d < bhi || b == bins-1) {
				vals = append(vals, iters[i])
			}
		}
		if len(vals) == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%.1f–%.1f", blo, bhi), stats.Mean(vals), stats.Min(vals), stats.Max(vals), len(vals))
	}
	return t, nil
}
