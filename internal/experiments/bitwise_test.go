package experiments

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The optimized centralized stack (workspace-reuse knapsack, SolveAll-fed
// self-consistent partition, incremental layout search) must reproduce the
// committed result files byte for byte at the same seed: speed work is not
// allowed to move a single digit. fig3.11 and fig5.7 are checked against
// results_quick.txt, fig3.13 (and fig5.5, layout's other full-scale table)
// against results_full_dynamics.txt.
//
// results_full_ch35.txt's fig3.10/fig3.12 sections are NOT asserted: those
// two predate the PR 1 pipeline rework (the committed v0 tables no longer
// match the pre-optimization HEAD either, verified with the unmodified
// binary), so they cannot serve as a reference for this PR's invariance.

// tableSection extracts the "== id — ..." section of a results file, with
// the wall-clock "(id in 1.2s)" lines stripped.
func tableSection(t *testing.T, path, id string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	timing := regexp.MustCompile(`^\s*\(` + regexp.QuoteMeta(id) + ` in [^)]+\)$`)
	var out strings.Builder
	in, skipBlank := false, false
	for _, line := range strings.SplitAfter(string(data), "\n") {
		if strings.HasPrefix(line, "== ") {
			in = strings.HasPrefix(line, "== "+id+" — ")
		}
		if !in {
			continue
		}
		if timing.MatchString(strings.TrimSuffix(line, "\n")) {
			// Drop the runner's wall-clock line and the blank line it adds.
			skipBlank = true
			continue
		}
		if skipBlank && line == "\n" {
			skipBlank = false
			continue
		}
		skipBlank = false
		out.WriteString(line)
	}
	if out.Len() == 0 {
		t.Fatalf("section %s not found in %s", id, path)
	}
	return out.String()
}

func renderTable(t *testing.T, tab Table, err error) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	return sb.String()
}

func resultsPath(t *testing.T, name string) string {
	t.Helper()
	// The test runs in internal/experiments; the results live at the repo
	// root.
	return filepath.Join("..", "..", name)
}

func TestBitwiseIdenticalToCommittedResults(t *testing.T) {
	const seed = 1
	cases := []struct {
		id   string
		file string
		run  func() (Table, error)
	}{
		{"fig3.11", "results_quick.txt", func() (Table, error) { return Fig311(Quick, seed) }},
		{"fig5.7", "results_quick.txt", func() (Table, error) { return Fig57(Quick, seed) }},
		{"fig3.13", "results_quick.txt", func() (Table, error) { return Fig313(Quick, seed) }},
		// desscale pins the scenario runners on the shared-clock event core:
		// both the event-driven and the tick-driven path must reproduce the
		// same churn realizations, refresh counts, and power accounting.
		{"desscale", "results_quick.txt", func() (Table, error) { return DesScale(Quick, seed) }},
		// hierscale pins the fault-free DiBA paths — the hierarchical engine
		// and the flat engine it is compared against — so neither fast path
		// may move a digit at the same seed.
		{"hierscale", "results_quick.txt", func() (Table, error) { return HierScale(Quick, seed) }},
		// hierfail pins the lease ledger's integer conservation and the
		// degraded-mode engine paths: a failover or freeze may not move a
		// digit of the reconvergence/overshoot/stranded accounting.
		{"hierfail", "results_quick.txt", func() (Table, error) { return HierFail(Quick, seed) }},
		// grayfail pins the virtual-slot gray-failure model: the max-plus
		// timing, the exact round arithmetic, and the stale-settlement
		// algebra may not move a digit — in particular the conservation
		// column must stay at float precision.
		{"grayfail", "results_quick.txt", func() (Table, error) { return GrayFail(Quick, seed) }},
	}
	for _, c := range cases {
		t.Run(c.id, func(t *testing.T) {
			want := tableSection(t, resultsPath(t, c.file), c.id)
			tab, err := c.run()
			got := renderTable(t, tab, err)
			if got != want {
				t.Errorf("%s differs from committed %s at seed %d\ngot:\n%s\nwant:\n%s",
					c.id, c.file, seed, got, want)
			}
		})
	}
}

// Full-scale byte-identity: fig3.13 at 800 servers used to take 17 s of
// knapsack bisection; with the single-DP budgeter it runs in well under a
// second, so it can be asserted even in short mode. fig5.5 exercises the
// incremental layout search at the full 80-rack room.
func TestBitwiseIdenticalFullScale(t *testing.T) {
	const seed = 1
	cases := []struct {
		id  string
		run func() (Table, error)
	}{
		{"fig3.13", func() (Table, error) { return Fig313(Full, seed) }},
		{"fig5.5", func() (Table, error) { return Fig55(Full, seed) }},
	}
	for _, c := range cases {
		t.Run(c.id, func(t *testing.T) {
			if testing.Short() && c.id == "fig5.5" {
				t.Skip("full-scale layout run skipped in short mode")
			}
			want := tableSection(t, resultsPath(t, "results_full_dynamics.txt"), c.id)
			tab, err := c.run()
			got := renderTable(t, tab, err)
			if got != want {
				t.Errorf("%s differs from committed results_full_dynamics.txt at seed %d\ngot:\n%s\nwant:\n%s",
					c.id, seed, got, want)
			}
		})
	}
}
