package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/parallel"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// HierScale compares hierarchical and flat DiBA convergence at matched
// cluster sizes on the paper's rack topology (rack-internal rings plus a
// leader ring): rounds to 99% of the respective centralized optimum, the
// number of per-rack budget violations the hierarchical run ever commits
// (expected: zero — the negativity certificate holds every round), and the
// worst budget margin seen on any round across every constraint family.
// The hierarchical engine pays extra rounds for enforcing the rack PDUs it
// alone respects; the flat run bounds only the cluster total.
func HierScale(scale Scale, seed int64) (Table, error) {
	type shape struct{ nRacks, perRack int }
	var shapes []shape
	if scale == Full {
		shapes = []shape{{25, 40}, {100, 40}, {250, 40}}
	} else {
		shapes = []shape{{6, 40}, {25, 40}}
	}
	maxIters := scale.pick(20000, 40000)

	t := Table{
		ID:      "hierscale",
		Title:   "Hierarchical vs flat DiBA at matched size (rack PDU 155 W/node, cluster 160 W/node)",
		Columns: []string{"# nodes", "hier rounds", "flat rounds", "hier/opt", "flat/opt", "violations", "worst margin (W)"},
		Notes: []string{
			"expected shape: both round counts stay roughly flat in N; the hierarchical run converges to the rack-constrained optimum with zero PDU violations and a positive worst margin on every round",
		},
	}

	type row struct {
		hierRounds, flatRounds int
		hierRatio, flatRatio   float64
		violations             int
		worstMargin            float64
	}
	rows := make([]row, len(shapes))
	// Sweep points are independent: one RNG per point (seed + index) so the
	// output does not depend on worker count or execution order.
	err := parallel.ForEach(len(shapes), func(k int) error {
		s := shapes[k]
		n := s.nRacks * s.perRack
		rng := rand.New(rand.NewSource(seed + int64(k)))
		a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0.01, rng)
		if err != nil {
			return err
		}
		us := a.UtilitySlice()
		clusterBudget := 160.0 * float64(n)
		rackBudget := 155.0 * float64(s.perRack)
		g, gofs := topology.NestedRings(s.nRacks, s.perRack)
		rackOf := gofs[0]

		sh := solver.Hierarchy{RackOf: rackOf, RackBudget: make([]float64, s.nRacks)}
		for rk := range sh.RackBudget {
			sh.RackBudget[rk] = rackBudget
		}
		hopt, err := solver.OptimalHierarchical(us, clusterBudget, sh)
		if err != nil {
			return err
		}
		fopt, err := solver.Optimal(us, clusterBudget)
		if err != nil {
			return err
		}

		hier, err := diba.NewHier(g, us, clusterBudget,
			diba.Racks{RackOf: rackOf, RackBudget: sh.RackBudget}, diba.Config{})
		if err != nil {
			return err
		}
		defer hier.Close()
		hierRounds := maxIters
		violations := 0
		worstMargin := math.Inf(1)
		for r := 1; r <= maxIters; r++ {
			hier.StepAuto()
			if m := clusterBudget - hier.TotalPower(); m < worstMargin {
				worstMargin = m
			}
			for rk := 0; rk < s.nRacks; rk++ {
				m := rackBudget - hier.RackPower(rk)
				if m < 0 {
					violations++
				}
				if m < worstMargin {
					worstMargin = m
				}
			}
			if hier.TotalUtility() >= 0.99*hopt.Utility {
				hierRounds = r
				break
			}
		}

		flat, err := diba.New(g, us, clusterBudget, diba.Config{})
		if err != nil {
			return err
		}
		res := flat.RunToTarget(fopt.Utility, 0.99, maxIters)

		rows[k] = row{
			hierRounds:  hierRounds,
			flatRounds:  res.Iterations,
			hierRatio:   hier.TotalUtility() / hopt.Utility,
			flatRatio:   res.Utility / fopt.Utility,
			violations:  violations,
			worstMargin: worstMargin,
		}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	for k, s := range shapes {
		r := rows[k]
		t.AddRow(s.nRacks*s.perRack, r.hierRounds, r.flatRounds,
			fmt.Sprintf("%.4f", r.hierRatio),
			fmt.Sprintf("%.4f", r.flatRatio),
			r.violations,
			fmt.Sprintf("%.2f", r.worstMargin))
	}
	return t, nil
}
