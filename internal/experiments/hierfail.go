package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// HierFail measures the three degraded modes of the distributed two-level
// hierarchy (hieragent.go) with a deterministic synchronous model: one DiBA
// engine per group capped at its leased share, and the integer-milliwatt
// lease ledger carrying the inter-group budget exchanges. The scenarios
// mirror the chaos drills in cmd/dibad/hierkill_test.go — aggregate crash
// with ledger recovery from neighbor echoes, an inter-level partition that
// expires the lease and freezes the group, and a donation schedule holding
// Σ(leases) == B bitwise — but report the quantities the drills cannot:
// reconvergence rounds, overshoot W·rounds, and stranded W·rounds.
func HierFail(scale Scale, seed int64) (Table, error) {
	const groups = 3
	m := scale.pick(20, 100)
	n := groups * m
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	budget := 170.0 * float64(n)
	budgetMw := diba.LeaseMilliwatts(budget)
	maxIters := scale.pick(6000, 20000)

	t := Table{
		ID:    "hierfail",
		Title: fmt.Sprintf("Hierarchy failure modes: %d groups × %d nodes, B=%.0f W", groups, m, budget),
		Columns: []string{"scenario", "recovery rounds", "overshoot (W·rd)",
			"stranded (W·rd)", "Σleases−B (mW)"},
		Notes: []string{
			"expected shape: overshoot stays 0 in every scenario (degraded modes only ever shrink a group's cap);",
			"Σleases−B is exactly 0 after every reconciliation — the ledger is integer and donor-first;",
			"stranded power is the price of safety: a dead node's share and the freeze margin sit unused until the hierarchy rebalances",
		},
	}

	// build constructs the fresh cluster: per-group chordal-ring engines at
	// their genesis lease, fully exchanged ledgers, and each group converged
	// to ≥99% of its leased optimum.
	build := func() ([]*diba.Engine, []*diba.LeaseLedger, []float64, []int64, error) {
		lease, err := diba.GenesisLeases(budgetMw, []int{m, m, m})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		engines := make([]*diba.Engine, groups)
		ledgers := make([]*diba.LeaseLedger, groups)
		opts := make([]float64, groups)
		stride := m / 7
		if stride < 2 {
			stride = 2
		}
		for g := 0; g < groups; g++ {
			gus := us[g*m : (g+1)*m]
			en, err := diba.New(topology.ChordalRing(m, stride), gus, diba.LeaseWatts(lease[g]), diba.Config{})
			if err != nil {
				return nil, nil, nil, nil, err
			}
			opt, err := solver.Optimal(gus, diba.LeaseWatts(lease[g]))
			if err != nil {
				return nil, nil, nil, nil, err
			}
			en.RunToTarget(opt.Utility, 0.99, maxIters)
			engines[g] = en
			opts[g] = opt.Utility
			peers := make([]int, 0, groups-1)
			for p := 0; p < groups; p++ {
				if p != g {
					peers = append(peers, p)
				}
			}
			ledgers[g] = diba.NewLeaseLedger(lease[g], peers, true)
		}
		return engines, ledgers, opts, lease, nil
	}

	// exchange plays the edge's message pair in both directions, the
	// anti-entropy step every upper-ring round performs.
	exchange := func(ledgers []*diba.LeaseLedger, a, b int) {
		ledgers[a].Merge(b, ledgers[b].Given(a), ledgers[b].Taken(a))
		ledgers[b].Merge(a, ledgers[a].Given(b), ledgers[a].Taken(b))
	}
	leaseSum := func(ledgers []*diba.LeaseLedger) int64 {
		var s int64
		for _, l := range ledgers {
			s += l.Lease()
		}
		return s
	}

	// Per-round meter: overshoot is Σ max(0, ΣP − B); stranded is
	// Σ max(0, B − Σ group caps) — budget no live group may spend.
	var overshoot, stranded float64
	tick := func(engines []*diba.Engine) {
		var p, caps float64
		for _, en := range engines {
			p += en.TotalPower()
			caps += en.Budget()
		}
		if d := p - budget; d > 0 {
			overshoot += d
		}
		if d := budget - caps; d > 0 {
			stranded += d
		}
	}
	// stepUntil steps every engine in lockstep until group g reaches frac of
	// target (or the round bound), returning the rounds taken.
	stepUntil := func(engines []*diba.Engine, g int, target, frac float64) int {
		r := 0
		for ; r < maxIters && engines[g].TotalUtility() < frac*target; r++ {
			for _, en := range engines {
				en.Step()
			}
			tick(engines)
		}
		return r
	}

	// Scenario 1: the aggregate of group 1 crashes after a few donations
	// have moved the counters off genesis. The successor's ledger starts
	// empty and unsynced; its neighbors' echoes rebuild it to exactly the
	// pre-crash lease, and the group reconverges to its survivor optimum.
	{
		engines, ledgers, _, _, err := build()
		if err != nil {
			return Table{}, err
		}
		overshoot, stranded = 0, 0
		for _, d := range [][2]int{{0, 1}, {2, 1}, {1, 0}} {
			ledgers[d[0]].Donate(d[1], diba.LeaseMilliwatts(2))
			exchange(ledgers, d[0], d[1])
		}
		for g, en := range engines {
			if err := en.SetBudget(diba.LeaseWatts(ledgers[g].Lease())); err != nil {
				return Table{}, err
			}
		}
		preLease := ledgers[1].Lease()
		if err := engines[1].FailNode(0); err != nil {
			return Table{}, fmt.Errorf("experiments: killing aggregate: %w", err)
		}
		successor := diba.NewLeaseLedger(ledgers[1].Genesis(), []int{0, 2}, false)
		ledgers[1] = successor
		exchange(ledgers, 1, 0)
		exchange(ledgers, 1, 2)
		if !successor.Synced() || successor.Lease() != preLease {
			return Table{}, fmt.Errorf("experiments: echo recovery rebuilt lease %d mW, want %d", successor.Lease(), preLease)
		}
		liveUs := append([]workload.Utility(nil), us[m+1:2*m]...)
		liveOpt, err := solver.Optimal(liveUs, engines[1].Budget())
		if err != nil {
			return Table{}, err
		}
		rec := stepUntil(engines, 1, liveOpt.Utility, 0.995)
		t.AddRow("aggregate crash + failover", rec,
			fmt.Sprintf("%.3f", overshoot), fmt.Sprintf("%.3f", stranded), leaseSum(ledgers)-budgetMw)
	}

	// Scenario 2: group 1 is partitioned from the upper ring. Its lease
	// expires after the TTL and the group freezes at lease minus the margin;
	// meanwhile the reachable groups keep trading. On heal the edges resync
	// and the group thaws back to its full lease.
	{
		engines, ledgers, opts, _, err := build()
		if err != nil {
			return Table{}, err
		}
		overshoot, stranded = 0, 0
		const ttl, outage = 12, 80
		const freezeMargin = 0.01
		for r := 0; r < ttl; r++ {
			for _, en := range engines {
				en.Step()
			}
			tick(engines)
		}
		frozenAt := diba.LeaseWatts(ledgers[1].Lease()) - freezeMargin
		if err := engines[1].SetBudget(frozenAt); err != nil {
			return Table{}, err
		}
		for r := ttl; r < outage; r++ {
			if r == outage/2 {
				// The reachable side keeps rebalancing during the outage.
				ledgers[0].Donate(2, diba.LeaseMilliwatts(3))
				exchange(ledgers, 0, 2)
				for _, g := range []int{0, 2} {
					if err := engines[g].SetBudget(diba.LeaseWatts(ledgers[g].Lease())); err != nil {
						return Table{}, err
					}
				}
			}
			for _, en := range engines {
				en.Step()
			}
			tick(engines)
		}
		exchange(ledgers, 1, 0)
		exchange(ledgers, 1, 2)
		if err := engines[1].SetBudget(diba.LeaseWatts(ledgers[1].Lease())); err != nil {
			return Table{}, err
		}
		rec := stepUntil(engines, 1, opts[1], 0.995)
		t.AddRow("inter-level partition + lease expiry", rec,
			fmt.Sprintf("%.3f", overshoot), fmt.Sprintf("%.3f", stranded), leaseSum(ledgers)-budgetMw)
	}

	// Scenario 3: a fault-free donation schedule — the upper ring moves
	// budget toward the hungriest group each exchange. The conservation
	// column must stay exactly 0 through every transfer.
	{
		engines, ledgers, opts, _, err := build()
		if err != nil {
			return Table{}, err
		}
		overshoot, stranded = 0, 0
		exact := true
		for x := 0; x < 10; x++ {
			donor, recv, best, worst := 0, 0, -1.0, -1.0
			for g, en := range engines {
				head := en.Budget() - en.TotalPower()
				if head > best {
					best, donor = head, g
				}
				if worst < 0 || head < worst {
					worst, recv = head, g
				}
			}
			if donor != recv {
				step := diba.LeaseMilliwatts((best - worst) / 4)
				if cap := diba.LeaseMilliwatts(5); step > cap {
					step = cap
				}
				ledgers[donor].Donate(recv, step)
				exchange(ledgers, donor, recv)
				for _, g := range []int{donor, recv} {
					if err := engines[g].SetBudget(diba.LeaseWatts(ledgers[g].Lease())); err != nil {
						return Table{}, err
					}
				}
			}
			if leaseSum(ledgers) != budgetMw {
				exact = false
			}
			for r := 0; r < 5; r++ {
				for _, en := range engines {
					en.Step()
				}
				tick(engines)
			}
		}
		rec := stepUntil(engines, 0, opts[0], 0.995)
		if !exact {
			t.Notes = append(t.Notes, "WARNING: Σ(leases) deviated from B during the transfer schedule")
		}
		t.AddRow("lease transfer schedule (fault-free)", rec,
			fmt.Sprintf("%.3f", overshoot), fmt.Sprintf("%.3f", stranded), leaseSum(ledgers)-budgetMw)
	}

	return t, nil
}
