package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tab Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: cell (%d,%d) out of range", tab.ID, row, col)
	}
	return tab.Rows[row][col]
}

func cellF(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric: %v", tab.ID, row, col, cell(t, tab, row, col), err)
	}
	return v
}

func TestTableFprint(t *testing.T) {
	tab := Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}, Notes: []string{"n1"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("s", "t")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x — demo ==", "a", "bb", "2.5", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := Table{ID: "x", Columns: []string{"a", "b"}, Notes: []string{"n"}}
	tab.AddRow(1, "two")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,two\n# n\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestScalePick(t *testing.T) {
	if Quick.pick(1, 2) != 1 || Full.pick(1, 2) != 2 {
		t.Fatal("pick wrong")
	}
}

func TestFig42Shape(t *testing.T) {
	tab, err := Fig42()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatal("too few power points")
	}
	// All four series end at 1 (normalized) and are non-decreasing.
	last := len(tab.Rows) - 1
	for col := 1; col <= 4; col++ {
		if v := cellF(t, tab, last, col); v < 0.999 {
			t.Fatalf("series %d does not reach 1: %v", col, v)
		}
		prev := -1.0
		for r := range tab.Rows {
			v := cellF(t, tab, r, col)
			if v < prev-1e-9 {
				t.Fatalf("series %d decreasing at row %d", col, r)
			}
			prev = v
		}
	}
}

func TestFig43Shape(t *testing.T) {
	tab, err := Fig43(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 budget rows, got %d", len(tab.Rows))
	}
	var firstGain, lastGain float64
	for r := range tab.Rows {
		uniform := cellF(t, tab, r, 1)
		pd := cellF(t, tab, r, 2)
		diba := cellF(t, tab, r, 3)
		opt := cellF(t, tab, r, 4)
		if !(uniform < pd && uniform < diba) {
			t.Fatalf("row %d: uniform must lose to PD and DiBA", r)
		}
		if pd > opt+1e-6 || diba > opt+1e-6 {
			t.Fatalf("row %d: nothing may beat the optimum", r)
		}
		if diba < 0.98*opt {
			t.Fatalf("row %d: DiBA %v strayed >2%% from optimal %v", r, diba, opt)
		}
		gain := cellF(t, tab, r, 6)
		if r == 0 {
			firstGain = gain
		}
		lastGain = gain
	}
	if lastGain >= firstGain {
		t.Fatalf("DiBA's gain over uniform must shrink with budget: %v → %v", firstGain, lastGain)
	}
}

func TestTable42Shape(t *testing.T) {
	tab, err := Table42(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 cluster sizes, got %d", len(tab.Rows))
	}
	// Centralized and PD communication grow with N; DiBA communication does
	// not scale with N (allow fluctuation from iteration-count noise).
	for r := 1; r < len(tab.Rows); r++ {
		if cellF(t, tab, r, 2) <= cellF(t, tab, r-1, 2) {
			t.Fatal("centralized comm must grow with N")
		}
		if cellF(t, tab, r, 3) <= cellF(t, tab, r, 2) {
			t.Fatal("sampled p95 must exceed the deterministic mean")
		}
		if cellF(t, tab, r, 5) <= cellF(t, tab, r-1, 5) {
			t.Fatal("PD comm must grow with N")
		}
	}
	last := len(tab.Rows) - 1
	if cellF(t, tab, last, 7) > 3*cellF(t, tab, 0, 7) {
		t.Fatal("DiBA comm must stay roughly flat in N")
	}
	// At the largest size, DiBA must beat PD overall.
	if cellF(t, tab, last, 7) >= cellF(t, tab, last, 5) {
		t.Fatal("DiBA must beat PD communication at scale")
	}
}

func TestFig44NoViolations(t *testing.T) {
	tab, err := Fig44(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		if cellF(t, tab, r, 2) > cellF(t, tab, r, 1)+1e-9 {
			t.Fatalf("row %d: power exceeds budget", r)
		}
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "violations") && !strings.Contains(n, ": 0 (must be 0)") {
			t.Fatalf("violations note reports non-zero: %s", n)
		}
	}
}

func TestFig45Fig46StepResponses(t *testing.T) {
	drop, err := Fig45(Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range drop.Notes {
		if strings.Contains(n, "VIOLATION") {
			t.Fatalf("budget drop violated: %s", n)
		}
	}
	// Utility recovers after the cut.
	if cellF(t, drop, len(drop.Rows)-1, 2) <= cellF(t, drop, 0, 2) {
		t.Fatal("utility must recover after the drop")
	}
	jump, err := Fig46(Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Power ramps up and never exceeds the new budget.
	first := cellF(t, jump, 0, 1)
	last := cellF(t, jump, len(jump.Rows)-1, 1)
	if last <= first {
		t.Fatal("power must ramp up after the jump")
	}
	for r := range jump.Rows {
		if cellF(t, jump, r, 1) > cellF(t, jump, r, 3)+1e-9 {
			t.Fatalf("row %d: overshoot", r)
		}
	}
}

func TestFig48Decays(t *testing.T) {
	tab, err := Fig48(3)
	if err != nil {
		t.Fatal(err)
	}
	first := cellF(t, tab, 0, 1)
	last := cellF(t, tab, len(tab.Rows)-1, 1)
	if last >= first {
		t.Fatalf("node-50 disturbance must decay: %v → %v", first, last)
	}
}

func TestFig49Locality(t *testing.T) {
	tab, err := Fig49(3)
	if err != nil {
		t.Fatal(err)
	}
	if cellF(t, tab, 0, 1) < 5*cellF(t, tab, len(tab.Rows)-1, 1) {
		t.Fatal("perturbed node's change must dwarf the far field")
	}
}

func TestFig410DegreeTrend(t *testing.T) {
	tab, err := Fig410(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatal("too few degree bins")
	}
	first := cellF(t, tab, 0, 1)
	last := cellF(t, tab, len(tab.Rows)-1, 1)
	if last >= first {
		t.Fatalf("iterations must fall with degree: %v → %v", first, last)
	}
}

func TestTable32Ordering(t *testing.T) {
	tab, err := Table32(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatal("six model families expected")
	}
	ours := cellF(t, tab, 0, 1)
	prevCubic := cellF(t, tab, 4, 1)
	prevLinear := cellF(t, tab, 5, 1)
	if !(ours < prevCubic && prevCubic < prevLinear) {
		t.Fatalf("Table 3.2 ordering broken: %v, %v, %v", ours, prevCubic, prevLinear)
	}
}

func TestFig310CoolingShare(t *testing.T) {
	tab, err := Fig310(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		share := cellF(t, tab, r, 3)
		if share < 20 || share > 45 {
			t.Fatalf("row %d: cooling share %v%% outside plausible band", r, share)
		}
	}
	if cellF(t, tab, len(tab.Rows)-1, 3) < cellF(t, tab, 0, 3) {
		t.Fatal("cooling share must grow with budget")
	}
}

func TestFig312MethodOrdering(t *testing.T) {
	tab, err := Fig312(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in groups of four: uniform, greedy, predictor, oracle.
	for g := 0; g+3 < len(tab.Rows); g += 4 {
		uni := cellF(t, tab, g, 3)
		pred := cellF(t, tab, g+2, 3)
		oracle := cellF(t, tab, g+3, 3)
		if pred < uni-1e-4 {
			t.Fatalf("group %d: predictor+knapsack (%v) lost to uniform (%v)", g, pred, uni)
		}
		if pred > oracle+5e-3 {
			t.Fatalf("group %d: predictor (%v) implausibly beat oracle (%v)", g, pred, oracle)
		}
	}
}

func TestTable52Ordering(t *testing.T) {
	tab, err := Table52(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	anneal := cellF(t, tab, 0, 3)
	greedy := cellF(t, tab, 2, 3)
	if anneal < greedy-0.5 {
		t.Fatalf("anneal (%v%%) must not lose to greedy (%v%%)", anneal, greedy)
	}
	if anneal < 5 {
		t.Fatalf("anneal saving %v%% implausibly small", anneal)
	}
}

func TestAblationStory(t *testing.T) {
	tab, err := Ablation(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	def := byName["default (newton, one-sided caps)"]
	if def == nil || def[1] == "DNF" {
		t.Fatal("default variant must converge")
	}
	fixed := byName["fixed gradient step (400 W·W/BIPS)"]
	if fixed == nil || fixed[1] != "DNF" {
		t.Fatal("fixed-step variant must fail to converge (the limit cycle)")
	}
	small := byName["η=0.002 (10× smaller)"]
	if small == nil || small[1] == "DNF" {
		t.Fatal("small-η variant should still converge, just slower")
	}
}

func TestFailureRecovery(t *testing.T) {
	tab, err := Failure(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("want initial + 4 crashes, got %d rows", len(tab.Rows))
	}
	for r := range tab.Rows {
		if strings.Contains(cell(t, tab, r, 0), "VIOLATION") {
			t.Fatalf("row %d violated the budget", r)
		}
		if cellF(t, tab, r, 3) > cellF(t, tab, r, 2)+1e-9 {
			t.Fatalf("row %d: power above budget", r)
		}
		if cellF(t, tab, r, 4) < 0.99 {
			t.Fatalf("row %d: survivor ratio %v below 99%%", r, cellF(t, tab, r, 4))
		}
	}
	foundContrast := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "refused as expected") {
			foundContrast = true
		}
	}
	if !foundContrast {
		t.Fatal("plain-ring contrast note missing")
	}
}

func TestFig54AllPositive(t *testing.T) {
	tab, err := Fig54(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		for c := 2; c <= 4; c++ {
			if cellF(t, tab, r, c) <= 0 {
				t.Fatalf("row %d col %d: planner lost to oblivious", r, c)
			}
		}
	}
}
