package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Async contrasts the synchronous (BSP) DiBA rounds with the gossip
// protocol under increasing message delay — the regime a real cluster
// without NTP-grade synchronization lives in (the text notes the
// primal-dual scheme *requires* synchronization; DiBA does not). Reported
// per variant: utility ratio after an equal per-node activation budget,
// conservation residual, and the worst budget overshoot observed anywhere
// along the run.
func Async(scale Scale, seed int64) (Table, error) {
	n := scale.pick(100, 400)
	roundsBudget := scale.pick(2500, 6000)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	budget := 170.0 * float64(n)
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "async",
		Title:   fmt.Sprintf("Synchronous vs gossip DiBA (ring, N=%d, %d rounds/node)", n, roundsBudget),
		Columns: []string{"variant", "utility ratio", "max overshoot (W)", "conservation |res|"},
		Notes: []string{
			"expected shape: gossip matches BSP quality and degrades gracefully with message delay; overshoot stays negligible; conservation is exact at all times",
		},
	}

	// Synchronous reference.
	en, err := diba.New(topology.Ring(n), us, budget, diba.Config{})
	if err != nil {
		return Table{}, err
	}
	for k := 0; k < roundsBudget; k++ {
		en.Step()
	}
	t.AddRow("synchronous (BSP)", fmt.Sprintf("%.4f", en.TotalUtility()/opt.Utility), "0.00", "0")

	for _, delay := range []int{1, 4, 16} {
		ac, err := diba.NewAsync(topology.Ring(n), us, budget, diba.Config{}, delay, seed+int64(delay))
		if err != nil {
			return Table{}, err
		}
		worst := 0.0
		for k := 0; k < n*roundsBudget; k++ {
			ac.Step()
			if k%n == 0 {
				if over := ac.TotalPower() - budget; over > worst {
					worst = over
				}
			}
		}
		ac.Flush()
		res := 0.0
		if err := ac.CheckConservation(1e-9); err != nil {
			res = 1 // flag: should never happen
		}
		t.AddRow(fmt.Sprintf("gossip, delay ≤%d activations", delay),
			fmt.Sprintf("%.4f", ac.TotalUtility()/opt.Utility),
			fmt.Sprintf("%.2f", worst),
			fmt.Sprintf("%.0g", res))
	}
	return t, nil
}
