package experiments

import (
	"strings"
	"testing"
)

func TestFig311Trajectory(t *testing.T) {
	tab, err := Fig311(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatal("trajectory too short to be meaningful")
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "WARNING") {
			t.Fatalf("trajectory did not converge: %s", n)
		}
	}
	// The residual (last column) must shrink from first to last step.
	first := cellF(t, tab, 0, 3)
	last := cellF(t, tab, len(tab.Rows)-1, 3)
	if abs(last) >= abs(first) {
		t.Fatalf("residual must shrink: %v → %v", first, last)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestFig34Contraction(t *testing.T) {
	tab, err := Fig34(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every reported ratio must be below ~1 (contraction), allowing the
	// discretization-noise guard to have trimmed the tail.
	for r := 1; r < len(tab.Rows); r++ {
		ratio := cellF(t, tab, r, 2)
		if ratio >= 1.05 {
			t.Fatalf("row %d: ratio %v not contracting", r, ratio)
		}
	}
}

func TestFig313Savings(t *testing.T) {
	if testing.Short() {
		t.Skip("bisections over budgets are slow")
	}
	tab, err := Fig313(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		pred := cellF(t, tab, r, 3)
		oracle := cellF(t, tab, r, 4)
		if pred <= 0 {
			t.Fatalf("row %d: predictor+knapsack must save power vs uniform, got %v%%", r, pred)
		}
		if oracle < pred-0.5 {
			t.Fatalf("row %d: oracle (%v%%) must not lose to predictor (%v%%)", r, oracle, pred)
		}
	}
}

func TestFig314MethodAboveUniform(t *testing.T) {
	tab, err := Fig314(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	sawSolve := false
	for r := range tab.Rows {
		stage := cell(t, tab, r, 1)
		if stage == "random init" {
			continue // the paper's first 15 s: caps are random, uniform may win
		}
		sawSolve = true
		if cellF(t, tab, r, 2) <= cellF(t, tab, r, 3) {
			t.Fatalf("row %d (%s): method SNP must beat uniform", r, stage)
		}
	}
	if !sawSolve {
		t.Fatal("no post-solve stages present")
	}
}

func TestFig55AndFig57Positive(t *testing.T) {
	for _, f := range []func(Scale, int64) (Table, error){Fig55, Fig57} {
		tab, err := f(Quick, 1)
		if err != nil {
			t.Fatal(err)
		}
		for r := range tab.Rows {
			for c := len(tab.Columns) - 3; c < len(tab.Columns); c++ {
				if cellF(t, tab, r, c) <= 0 {
					t.Fatalf("%s row %d col %d: planner lost to oblivious", tab.ID, r, c)
				}
			}
		}
	}
}

func TestAsyncMatchesSync(t *testing.T) {
	tab, err := Async(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("want sync + 3 delay rows, got %d", len(tab.Rows))
	}
	sync := cellF(t, tab, 0, 1)
	for r := 1; r < len(tab.Rows); r++ {
		if got := cellF(t, tab, r, 1); got < sync-0.01 {
			t.Fatalf("row %d: gossip ratio %v more than a point below sync %v", r, got, sync)
		}
		if over := cellF(t, tab, r, 2); over > 1 {
			t.Fatalf("row %d: overshoot %v W too large", r, over)
		}
		if res := cellF(t, tab, r, 3); res != 0 {
			t.Fatalf("row %d: conservation residual flagged", r)
		}
	}
}

func TestHierarchyShape(t *testing.T) {
	tab, err := Hierarchy(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	prevOpt := 2.0
	for r := range tab.Rows {
		optRatio := cellF(t, tab, r, 1)
		if optRatio > prevOpt+1e-9 {
			t.Fatalf("row %d: tighter PDUs cannot raise the optimum", r)
		}
		prevOpt = optRatio
		if got := cellF(t, tab, r, 2); got < 0.985 {
			t.Fatalf("row %d: engine at %v of the hierarchical optimum", r, got)
		}
		if cellF(t, tab, r, 4) != 0 {
			t.Fatalf("row %d: PDU violations occurred", r)
		}
		if cellF(t, tab, r, 3) < 0 {
			t.Fatalf("row %d: negative worst margin", r)
		}
	}
}

func TestFXploreShape(t *testing.T) {
	tab, err := FXplore(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 policy rows, got %d", len(tab.Rows))
	}
	brute := cellF(t, tab, 1, 1)
	seq := cellF(t, tab, 2, 1)
	if brute >= 1 == false && seq >= 1 {
		t.Fatal("searches must beat the all-enabled baseline")
	}
	if seq > brute*1.01 {
		t.Fatalf("FXplore-S (%v) must track brute force (%v)", seq, brute)
	}
	if cellF(t, tab, 2, 2) >= cellF(t, tab, 1, 2) {
		t.Fatal("FXplore-S must cost fewer reboots than brute force")
	}
	// κ monotonicity: more sub-clusters, smaller gap.
	g2 := cellF(t, tab, 3, 3)
	g8 := cellF(t, tab, 5, 3)
	if g8 > g2+1e-9 {
		t.Fatalf("gap must shrink with κ: κ=2 %v vs κ=8 %v", g2, g8)
	}
}

func TestFig31Crossover(t *testing.T) {
	tab, err := Fig31(1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range tab.Notes {
		if n == "crossover present: true" {
			found = true
		}
	}
	if !found {
		t.Fatal("Fig 3.1's defining crossover is missing")
	}
}

func TestFig35Fig37Fig53Shapes(t *testing.T) {
	for _, f := range []func(Scale, int64) (Table, error){Fig35, Fig37, Fig53, Fig52} {
		tab, err := f(Quick, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range tab.Notes {
			if strings.Contains(n, "WARNING") {
				t.Fatalf("%s: %s", tab.ID, n)
			}
		}
	}
}

func TestSafetyOrdering(t *testing.T) {
	tab, err := Safety(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatal("want three schemes")
	}
	cent := cellF(t, tab, 0, 1)
	pd := cellF(t, tab, 1, 1)
	diba := cellF(t, tab, 2, 1)
	if !(diba < cent && cent < pd) {
		t.Fatalf("compliance ordering broken: diba %v, cent %v, pd %v", diba, cent, pd)
	}
	if diba > 5 {
		t.Fatalf("DiBA compliance %v ms not near-immediate", diba)
	}
	if cent < 50*diba {
		t.Fatal("the decentralized speedup must be large")
	}
}

func TestFig43ShapeStableAcrossSeeds(t *testing.T) {
	// The headline result must not depend on the workload draw.
	for _, seed := range []int64{2, 3, 5} {
		tab, err := Fig43(Quick, seed)
		if err != nil {
			t.Fatal(err)
		}
		for r := range tab.Rows {
			uniform := cellF(t, tab, r, 1)
			diba := cellF(t, tab, r, 3)
			opt := cellF(t, tab, r, 4)
			if diba <= uniform {
				t.Fatalf("seed %d row %d: DiBA must beat uniform", seed, r)
			}
			if diba < 0.98*opt {
				t.Fatalf("seed %d row %d: DiBA strayed from optimal", seed, r)
			}
		}
	}
}

func TestScalingFlat(t *testing.T) {
	tab, err := Scaling(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := cellF(t, tab, 0, 1)
	for r := range tab.Rows {
		ring := cellF(t, tab, r, 1)
		chord := cellF(t, tab, r, 2)
		if ring > 3*first {
			t.Fatalf("ring rounds not flat: %v vs %v at the smallest size", ring, first)
		}
		if chord > ring {
			t.Fatalf("row %d: chords must not slow convergence (%v vs %v)", r, chord, ring)
		}
	}
}

func TestSensorChaosOrdering(t *testing.T) {
	// Each telemetry layer must strictly improve containment, and the
	// hardened regime must meet the one-period acceptance criterion.
	tab, err := SensorChaos(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatal("want three regimes")
	}
	rawRun := cellF(t, tab, 0, 2)
	filterRun := cellF(t, tab, 1, 2)
	wdFiltRun := cellF(t, tab, 2, 4)
	if rawRun < 10 {
		t.Fatalf("raw regime's longest true-violation run %v, want a sustained (≥10) breach", rawRun)
	}
	if filterRun >= rawRun {
		t.Fatalf("filter did not shorten the violation runs: %v vs raw %v", filterRun, rawRun)
	}
	if wdFiltRun > 1 {
		t.Fatalf("watchdog regime's longest filtered run %v, want ≤ 1", wdFiltRun)
	}
	again, err := SensorChaos(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		for c := range tab.Rows[r] {
			if tab.Rows[r][c] != again.Rows[r][c] {
				t.Fatalf("not deterministic at row %d col %d: %q vs %q", r, c, tab.Rows[r][c], again.Rows[r][c])
			}
		}
	}
}
