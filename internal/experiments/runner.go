package experiments

import (
	"time"

	"powercap/internal/parallel"
)

// Job is one experiment scheduled on the runner: an id from the registry
// and the closure that produces its table.
type Job struct {
	ID  string
	Run func() (Table, error)
}

// JobResult is the outcome of one Job.
type JobResult struct {
	ID      string
	Table   Table
	Err     error
	Elapsed time.Duration
}

// RunJobs executes the jobs on up to parallel.Workers() goroutines and
// streams results to emit in job order: result i is delivered as soon as
// job i has finished AND every earlier job's result has been emitted. emit
// runs on the calling goroutine, so callers may print directly. The job
// order — and therefore the emitted output — is independent of the worker
// count; only wall-clock time changes.
func RunJobs(jobs []Job, emit func(JobResult)) {
	n := len(jobs)
	if n == 0 {
		return
	}
	w := parallel.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for _, j := range jobs {
			emit(runJob(j))
		}
		return
	}
	results := make([]JobResult, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, w)
	for i := range jobs {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = runJob(jobs[i])
			close(done[i])
		}(i)
	}
	for i := range jobs {
		<-done[i]
		emit(results[i])
	}
}

func runJob(j Job) JobResult {
	start := time.Now()
	tab, err := j.Run()
	return JobResult{ID: j.ID, Table: tab, Err: err, Elapsed: time.Since(start)}
}
