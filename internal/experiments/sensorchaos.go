package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/cluster"
	"powercap/internal/diba"
	"powercap/internal/safety"
	"powercap/internal/sensor"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// SensorChaos quantifies what each layer of the telemetry-hardening stack
// buys. The same cluster, caps, and seeded sensor fault plan (stuck-at,
// dropouts, spikes, calibration drift, quantization) run three times:
//
//   - raw: controllers act on the faulted meter output directly. A latched
//     or drifted-low sensor makes its controller think it has headroom, so
//     it raises the p-state and the *true* power climbs over the cap — the
//     cluster violates the budget and nothing notices.
//   - filter: the robust filter (range clamp → median despike → EWMA) sits
//     between meter and controller, distrusting and holding through fault
//     episodes. Most violations never happen.
//   - filter+watchdog: the cluster watchdog additionally checks the
//     filtered ΣP ≤ B every control period and emergency-sheds all caps
//     proportionally on a violation, releasing with hysteresis — the
//     residual violations are contained within one control period.
//
// The budget follows an emergency-cut cycle (nominal → deep cut →
// recovery) so the stack is judged where it matters: right at the boundary
// where a mislead controller has the least slack. DiBA recomputes the caps
// at each budget level; the enforcement loop is the persistent sensed path
// (cluster.Enforcer), so sensor bias, filter state, p-states, and the
// watchdog derate all carry across the cycle.
func SensorChaos(scale Scale, seed int64) (Table, error) {
	n := scale.pick(24, 96)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()

	// A long nominal warm phase (lets the calibration drift pin at its
	// floor), then repeated emergency-cut cycles: each deep cut forces a
	// multi-level p-state walk, the window where a mislead controller has
	// the least slack. Watts per node.
	type phase struct {
		budget  float64
		periods int
	}
	phases := []phase{{186 * float64(n), scale.pick(60, 200)}}
	for c := 0; c < 3; c++ {
		phases = append(phases,
			phase{120 * float64(n), scale.pick(30, 100)},
			phase{186 * float64(n), scale.pick(40, 120)})
	}
	totalPeriods := 0
	for _, ph := range phases {
		totalPeriods += ph.periods
	}

	plan := sensor.DefaultChaos(seed + 101)
	regimes := []struct {
		name string
		cfg  cluster.SensedConfig
	}{
		{"raw", cluster.SensedConfig{Plan: plan, RawTelemetry: true}},
		{"filter", cluster.SensedConfig{Plan: plan}},
		{"filter+watchdog", cluster.SensedConfig{Plan: plan, Watchdog: &safety.Config{}}},
	}

	t := Table{
		ID: "sensorchaos",
		Title: fmt.Sprintf("Budget violations under sensor faults across emergency-cut cycles (N=%d, %d periods)",
			n, totalPeriods),
		Columns: []string{"telemetry", "true violations", "max true run",
			"filtered violations", "max filtered run", "sheds"},
		Notes: []string{
			"identical caps, fault plan, and noise draws in every regime; only the telemetry stack differs",
			"expected shape: raw sustains multi-period true violations (drifted-low sensors overdraw unnoticed); the filter removes most; the watchdog contains the filtered residue to runs of at most 1 period",
		},
	}

	for _, reg := range regimes {
		en, err := diba.New(topology.Ring(n), us, phases[0].budget, diba.Config{})
		if err != nil {
			return Table{}, err
		}
		enf, err := cluster.NewEnforcer(a.Benchmarks, workload.DefaultServer, 0, reg.cfg)
		if err != nil {
			return Table{}, err
		}
		// Same seed per regime: identical controller noise draws, so the
		// regimes differ only in their telemetry stack.
		prng := rand.New(rand.NewSource(seed + 7))
		for _, ph := range phases {
			if err := en.SetBudget(ph.budget); err != nil {
				return Table{}, err
			}
			for r := 0; r < scale.pick(200, 1000); r++ {
				en.Step()
			}
			caps := en.Alloc()
			for p := 0; p < ph.periods; p++ {
				if _, err := enf.Period(caps, ph.budget, prng); err != nil {
					return Table{}, err
				}
			}
		}
		st := enf.Stats()
		t.AddRow(reg.name, st.TrueViolations, st.MaxTrueRun,
			st.FilteredViolations, st.MaxFilteredRun, st.Sheds)
	}
	return t, nil
}
