package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Ablation quantifies the design decisions DESIGN.md calls out, by running
// DiBA variants that undo them one at a time on the same instance:
//
//   - fixed-gradient power step instead of the damped Newton step
//     (limit-cycles near the barrier),
//   - two-sided (min-of-endpoints) flow caps instead of at-risk-endpoint
//     caps (starves tight nodes of headroom),
//   - barrier weight η swept around the default (optimality bias vs
//     redistribution speed),
//   - safety fraction γ swept (headroom for flows vs own moves).
//
// For each variant it reports iterations to the 99% criterion (or DNF) and
// the utility ratio reached at a fixed round budget.
func Ablation(scale Scale, seed int64) (Table, error) {
	n := scale.pick(200, 1000)
	maxIters := scale.pick(20000, 60000)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	budget := 170.0 * float64(n)
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "ablation",
		Title:   fmt.Sprintf("DiBA design ablations (ring, N=%d, 170 W/node)", n),
		Columns: []string{"variant", "iters to 99%", "ratio @ budget", "feasible"},
		Notes: []string{
			"expected shape: the default converges in a few hundred rounds; the fixed-step variant limit-cycles below target; two-sided caps stall; η trades bias for speed",
		},
	}
	variants := []struct {
		name string
		cfg  diba.Config
	}{
		{"default (newton, one-sided caps)", diba.Config{}},
		{"fixed gradient step (400 W·W/BIPS)", diba.Config{FixedStepP: 400}},
		{"two-sided flow caps", diba.Config{TwoSidedCaps: true}},
		{"η=0.002 (10× smaller)", diba.Config{Eta: 0.002}},
		{"η=0.2 (10× larger)", diba.Config{Eta: 0.2}},
		{"γ=0.2", diba.Config{Gamma: 0.2}},
		{"γ=0.9", diba.Config{Gamma: 0.9}},
	}
	for _, v := range variants {
		en, err := diba.New(topology.Ring(n), us, budget, v.cfg)
		if err != nil {
			return Table{}, err
		}
		res := en.RunToTarget(opt.Utility, 0.99, maxIters)
		iters := fmt.Sprintf("%d", res.Iterations)
		if !res.Converged {
			iters = "DNF"
		}
		feasible := "yes"
		if res.Power > budget || en.CheckInvariant(1e-5) != nil {
			feasible = "NO"
		}
		t.AddRow(v.name, iters, fmt.Sprintf("%.4f", res.Utility/opt.Utility), feasible)
	}
	return t, nil
}
