package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"powercap/internal/knapsack"
	"powercap/internal/predict"
	"powercap/internal/stats"
	"powercap/internal/thermal"
	"powercap/internal/workload"
)

// ch3Cluster is the Chapter 3 simulation substrate: n servers each running
// a four-member workload set on the discrete cap grid, plus a trained
// throughput predictor.
type ch3Cluster struct {
	server workload.Server
	caps   []float64
	sets   []workload.Set
	// obs is each server's runtime observation at its current cap.
	obs   []workload.Observation
	model predict.Model
	rng   *rand.Rand
	// ws and sol keep the knapsack DP tables alive across re-budgets.
	ws  knapsack.Workspace
	sol knapsack.Solution
}

// newCh3Cluster builds the cluster. heteroWithin selects the Fig. 3.12(b)
// case (four different benchmarks per server); otherwise each server runs
// four copies of one benchmark.
func newCh3Cluster(n int, heteroWithin bool, seed int64) (*ch3Cluster, error) {
	rng := rand.New(rand.NewSource(seed))
	s := workload.Chapter3Server
	caps := workload.CapGrid(s, 5)

	// Train the predictor on a separate characterization population.
	train, _, err := predict.TrainTestSplit(workload.Desktop, s, caps, 160, 1, 0.01, rng)
	if err != nil {
		return nil, err
	}
	model, err := predict.Train(predict.QuadraticLLCTP, train)
	if err != nil {
		return nil, err
	}

	c := &ch3Cluster{server: s, caps: caps, model: model, rng: rng,
		sets: make([]workload.Set, n), obs: make([]workload.Observation, n)}
	for i := 0; i < n; i++ {
		if heteroWithin {
			c.sets[i] = workload.NewHeteroSet(workload.Desktop, rng)
		} else {
			b := workload.Desktop[rng.Intn(len(workload.Desktop))].Perturb(rng, 0.05)
			c.sets[i] = workload.NewHomoSet(b)
		}
	}
	c.observeAll(145)
	return c, nil
}

// observeAll measures every server at the given operating cap (the state
// the budgeter sees at re-budget time).
func (c *ch3Cluster) observeAll(cap float64) {
	for i, set := range c.sets {
		c.obs[i] = set.Observe(cap, c.server, 0.01, c.rng)
	}
}

// trueANP evaluates an allocation against ground truth.
func (c *ch3Cluster) trueANPs(alloc []float64) []float64 {
	out := make([]float64, len(alloc))
	for i, set := range c.sets {
		out[i] = set.GroundTruth(alloc[i], c.server) / set.Peak(c.server)
	}
	return out
}

// report computes Chapter 3's geometric-mean SNP, slowdown norm and
// unfairness for an allocation.
func (c *ch3Cluster) report(alloc []float64) (snp, slow, unfair float64) {
	anps := c.trueANPs(alloc)
	snp = stats.GeoMean(anps)
	var s float64
	for _, a := range anps {
		s += 1 / a
	}
	slow = s / float64(len(anps))
	unfair = stats.CoeffVar(anps)
	return snp, slow, unfair
}

// uniformAlloc spreads the computing budget evenly over the cap range.
func (c *ch3Cluster) uniformAlloc(budget float64) []float64 {
	per := budget / float64(len(c.sets))
	if per > c.server.MaxWatts {
		per = c.server.MaxWatts
	}
	if per < c.server.IdleWatts {
		per = c.server.IdleWatts
	}
	out := make([]float64, len(c.sets))
	for i := range out {
		out[i] = per
	}
	return out
}

// greedyAlloc is "previous-greedy": rank servers by observed throughput per
// Watt and hand out cap upgrades in rank order.
func (c *ch3Cluster) greedyAlloc(budget float64) []float64 {
	n := len(c.sets)
	type ranked struct {
		idx int
		tpw float64
	}
	rs := make([]ranked, n)
	for i, o := range c.obs {
		rs[i] = ranked{idx: i, tpw: o.Throughput / o.Cap}
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && rs[j].tpw > rs[j-1].tpw; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := make([]float64, n)
	remaining := budget
	for i := range out {
		out[i] = c.server.IdleWatts
		remaining -= c.server.IdleWatts
	}
	span := c.server.MaxWatts - c.server.IdleWatts
	for _, r := range rs {
		if remaining <= 0 {
			break
		}
		give := math.Min(remaining, span)
		out[r.idx] += give
		remaining -= give
	}
	return out
}

// capChoices builds the per-server choice lists over the cap grid from the
// predicted (or oracle) throughputs. The lists depend only on the current
// observations and workload sets, not on the budget.
func (c *ch3Cluster) capChoices(oracle bool) ([][]knapsack.Choice, error) {
	return knapsack.CapGridChoices(len(c.sets), c.caps, func(i int, cap float64) float64 {
		if oracle {
			return c.sets[i].GroundTruth(cap, c.server)
		}
		return c.model.Predict(c.obs[i], cap)
	})
}

// knapsackAlloc budgets with the multiple-choice knapsack over predicted
// (or oracle) throughputs. The DP tables are reused across calls; loops
// that sweep budgets over unchanged observations should use
// knapsackBudgeter instead, which also reuses the choice lists and the DP
// itself.
func (c *ch3Cluster) knapsackAlloc(budget float64, oracle bool) ([]float64, error) {
	choices, err := c.capChoices(oracle)
	if err != nil {
		return nil, err
	}
	p := knapsack.Problem{Choices: choices, Budget: budget, StepW: 5}
	if err := c.ws.SolveTo(&c.sol, p); err != nil {
		return nil, err
	}
	return knapsack.Alloc(p, c.sol), nil
}

// knapsackBudgeter builds the choice lists once and runs the DP once at
// the ceiling budget; every budget at or below it is then answered by
// backtrack alone with bit-identical results, so the self-consistent
// partition loop and the budget bisections cost one DP instead of one per
// probe. Valid until the next observeAll (the choices snapshot the current
// observations).
func (c *ch3Cluster) knapsackBudgeter(ceiling float64, oracle bool) (*knapsack.Budgeter, error) {
	choices, err := c.capChoices(oracle)
	if err != nil {
		return nil, err
	}
	return knapsack.NewBudgeter(knapsack.Problem{Choices: choices, Budget: ceiling, StepW: 5})
}

// Table32 reproduces Table 3.2: throughput-prediction error of the six
// model families.
func Table32(scale Scale, seed int64) (Table, error) {
	rng := rand.New(rand.NewSource(seed))
	s := workload.Chapter3Server
	caps := workload.CapGrid(s, 5)
	nTrain := scale.pick(120, 240)
	nTest := scale.pick(60, 120)
	train, test, err := predict.TrainTestSplit(workload.Desktop, s, caps, nTrain, nTest, 0.01, rng)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "table3.2",
		Title:   "Throughput prediction error by model family",
		Columns: []string{"prediction method", "error %", "paper %"},
		Notes: []string{
			"expected shape: quadratic-LLC+TP best; the workload-independent previous-cubic/linear models worst",
		},
	}
	paper := map[predict.Kind]string{
		predict.QuadraticLLCTP: "1.37",
		predict.LinearLLCTP:    "2.13",
		predict.LinearTP:       "2.45",
		predict.ExponentialLLC: "2.73",
		predict.PreviousCubic:  "4.29",
		predict.PreviousLinear: "6.11",
	}
	for _, k := range predict.Kinds {
		m, err := predict.Train(k, train)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(m.Name(), fmt.Sprintf("%.2f", 100*predict.Evaluate(m, test)), paper[k])
	}
	return t, nil
}

// ch3Room builds the thermal room and a per-rack aggregation of a server
// allocation for the total-power experiments.
type ch3Room struct {
	room           *thermal.Room
	serversPerRack int
	// rack is the reused per-rack aggregation buffer; rackPower's result is
	// consumed (by CoolingPower) before the next call, never retained.
	rack []float64
}

func newCh3Room(nServers int) (*ch3Room, error) {
	const racks = 80
	if nServers%racks != 0 {
		return nil, fmt.Errorf("experiments: %d servers do not fill %d racks evenly", nServers, racks)
	}
	perRack := nServers / racks
	// Hold the per-rack thermal behaviour of the full 40-server racks under
	// down-scaled clusters: fewer servers per rack heat the same air volume
	// proportionally less, so the outlet rise per watt scales inversely.
	riseCPerKW := 1.8 * 40 / float64(perRack)
	room, err := thermal.NewDefaultRoom(riseCPerKW, 24)
	if err != nil {
		return nil, err
	}
	return &ch3Room{room: room, serversPerRack: perRack, rack: make([]float64, room.N())}, nil
}

func (r *ch3Room) rackPower(alloc []float64) []float64 {
	out := r.rack
	for i := range out {
		out[i] = 0
	}
	for i, p := range alloc {
		out[i/r.serversPerRack] += p
	}
	return out
}

// Fig310 reproduces Fig. 3.10: the computing/cooling split of total budgets
// 0.60–0.72 MW found by the self-consistent Algorithm 1, scaled to the
// cluster size in use.
func Fig310(scale Scale, seed int64) (Table, error) {
	n := scale.pick(320, 3200)
	c, err := newCh3Cluster(n, false, seed)
	if err != nil {
		return Table{}, err
	}
	r, err := newCh3Room(n)
	if err != nil {
		return Table{}, err
	}
	// The paper's budgets are for 3200 servers; scale them per server.
	factor := float64(n) / 3200
	t := Table{
		ID:      "fig3.10",
		Title:   fmt.Sprintf("Computing/cooling partition of the total budget (%d servers)", n),
		Columns: []string{"total (MW eq.)", "computing (kW)", "cooling (kW)", "cooling share %", "t_sup (°C)", "iters"},
		Notes: []string{
			"expected shape: cooling takes ≈30–38% of total and its share grows with the budget",
		},
	}
	// One DP at the largest total serves every budget the partition loops
	// probe across all five cases.
	kb, err := c.knapsackBudgeter(0.72e6*factor, true)
	if err != nil {
		return Table{}, err
	}
	budgeter := kb.Alloc
	var shares []float64
	for _, totalMW := range []float64{0.60, 0.63, 0.66, 0.69, 0.72} {
		total := totalMW * 1e6 * factor
		part, err := r.roomPartition(total, c.server.IdleWatts*float64(n), budgeter)
		if err != nil {
			return Table{}, err
		}
		share := 100 * part.Cooling / (part.Computing + part.Cooling)
		shares = append(shares, share)
		t.AddRow(totalMW, part.Computing/1000, part.Cooling/1000,
			fmt.Sprintf("%.1f", share), fmt.Sprintf("%.1f", part.SupplyC), len(part.Steps))
	}
	for i := 1; i < len(shares); i++ {
		if shares[i] < shares[i-1]-0.5 {
			t.Notes = append(t.Notes, "WARNING: cooling share did not grow with budget")
			break
		}
	}
	return t, nil
}

// roomPartition runs the self-consistent loop with rack aggregation. A
// transiently infeasible intermediate computing budget (below the cluster's
// idle floor, possible on the first iterations when cooling is
// overestimated) is clamped to the floor; the iteration recovers as long as
// the fixed point itself is feasible.
func (r *ch3Room) roomPartition(total, minComputing float64, budgeter func(float64) ([]float64, error)) (thermal.Partition, error) {
	return r.room.SelfConsistent(total, func(bs float64) ([]float64, error) {
		if bs < minComputing {
			bs = minComputing
		}
		alloc, err := budgeter(bs)
		if err != nil {
			return nil, err
		}
		return r.rackPower(alloc), nil
	}, 50, 60)
}

// Fig311 reproduces Fig. 3.11: the convergence trajectory of the
// self-consistent partition for the largest budget.
func Fig311(scale Scale, seed int64) (Table, error) {
	n := scale.pick(320, 3200)
	c, err := newCh3Cluster(n, false, seed)
	if err != nil {
		return Table{}, err
	}
	r, err := newCh3Room(n)
	if err != nil {
		return Table{}, err
	}
	total := 0.72e6 * float64(n) / 3200
	kb, err := c.knapsackBudgeter(total, true)
	if err != nil {
		return Table{}, err
	}
	part, err := r.roomPartition(total, c.server.IdleWatts*float64(n), kb.Alloc)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig3.11",
		Title:   "Self-consistent partition trajectory (0.72 MW case)",
		Columns: []string{"iteration", "computing (kW)", "cooling (kW)", "comp+cool − total (kW)"},
		Notes:   []string{"expected shape: the partition walks along computing+cooling→total and converges to the self-consistent point"},
	}
	for k, s := range part.Steps {
		t.AddRow(k+1, s.Computing/1000, s.Cooling/1000, (s.Computing+s.Cooling-total)/1000)
	}
	if !part.Converged {
		t.Notes = append(t.Notes, "WARNING: did not converge")
	}
	return t, nil
}

// Fig34 reproduces Fig. 3.4: the ratio of successive distances to the
// fixed point stays below one (the contraction the convergence proof
// leans on).
func Fig34(scale Scale, seed int64) (Table, error) {
	n := scale.pick(320, 3200)
	c, err := newCh3Cluster(n, false, seed)
	if err != nil {
		return Table{}, err
	}
	r, err := newCh3Room(n)
	if err != nil {
		return Table{}, err
	}
	total := 0.66e6 * float64(n) / 3200
	kb, err := c.knapsackBudgeter(total, true)
	if err != nil {
		return Table{}, err
	}
	part, err := r.roomPartition(total, c.server.IdleWatts*float64(n), kb.Alloc)
	if err != nil {
		return Table{}, err
	}
	if !part.Converged || len(part.Steps) < 3 {
		return Table{}, fmt.Errorf("experiments: partition did not converge enough for fig3.4 (%d steps)", len(part.Steps))
	}
	star := part.Computing
	t := Table{
		ID:      "fig3.4",
		Title:   "Ratio of distance R(k) of the self-consistent iteration",
		Columns: []string{"k", "|Bs(k) − Bs*| (kW)", "R(k)"},
		Notes:   []string{"expected shape: R(k) stabilizes below 1 (contraction)"},
	}
	prev := -1.0
	for k, s := range part.Steps[:len(part.Steps)-1] {
		d := math.Abs(s.Computing - star)
		if d < 200 {
			// Below the knapsack's discretization noise the ratio is
			// meaningless; the contraction has done its job by here.
			break
		}
		ratio := ""
		if prev > 0 {
			ratio = fmt.Sprintf("%.3f", d/prev)
		}
		t.AddRow(k+1, d/1000, ratio)
		prev = d
	}
	return t, nil
}

// Fig312 reproduces Fig. 3.12: SNP, slowdown norm and unfairness of the
// four budgeting methods over computing budgets, for both
// workload-composition cases.
func Fig312(scale Scale, seed int64) (Table, error) {
	n := scale.pick(400, 3200)
	t := Table{
		ID:      "fig3.12",
		Title:   fmt.Sprintf("Budgeting methods over computing budgets (%d servers)", n),
		Columns: []string{"case", "budget W/srv", "method", "SNP", "slowdown", "unfairness"},
		Notes: []string{
			"expected shape: predictor+knapsack ≥ uniform and previous-greedy on SNP, close to oracle+knapsack; greedy's unfairness blows up at low budgets",
		},
	}
	for _, hetero := range []bool{false, true} {
		caseName := "homo-within"
		if hetero {
			caseName = "hetero-within"
		}
		c, err := newCh3Cluster(n, hetero, seed)
		if err != nil {
			return Table{}, err
		}
		// One DP per method at the largest budget covers the whole sweep.
		predB, err := c.knapsackBudgeter(158*float64(n), false)
		if err != nil {
			return Table{}, err
		}
		oracleB, err := c.knapsackBudgeter(158*float64(n), true)
		if err != nil {
			return Table{}, err
		}
		for _, per := range []float64{138, 143, 148, 153, 158} {
			budget := per * float64(n)
			type method struct {
				name  string
				alloc []float64
			}
			var methods []method
			methods = append(methods, method{"uniform", c.uniformAlloc(budget)})
			methods = append(methods, method{"previous-greedy", c.greedyAlloc(budget)})
			pk, err := predB.Alloc(budget)
			if err != nil {
				return Table{}, err
			}
			methods = append(methods, method{"predictor+knapsack", pk})
			ok, err := oracleB.Alloc(budget)
			if err != nil {
				return Table{}, err
			}
			methods = append(methods, method{"oracle+knapsack", ok})
			for _, m := range methods {
				snp, slow, unfair := c.report(m.alloc)
				t.AddRow(caseName, per, m.name,
					fmt.Sprintf("%.4f", snp), fmt.Sprintf("%.4f", slow), fmt.Sprintf("%.4f", unfair))
			}
		}
	}
	return t, nil
}

// Fig313 reproduces Fig. 3.13: the computing power each method needs to hit
// an SNP target, as savings relative to uniform.
func Fig313(scale Scale, seed int64) (Table, error) {
	// Full scale stops at 800 servers: the budget bisection solves the
	// knapsack a few hundred times, and the relative savings are already
	// size-stable well below the paper's 3200 (the quick/full agreement in
	// EXPERIMENTS.md shows it).
	n := scale.pick(400, 800)
	c, err := newCh3Cluster(n, false, seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig3.13",
		Title:   fmt.Sprintf("Power saved vs uniform at equal SNP targets (%d servers)", n),
		Columns: []string{"SNP target", "uniform (kW)", "greedy save %", "predictor+knapsack save %", "oracle+knapsack save %"},
		Notes: []string{
			"expected shape: predictor+knapsack saves 1–3% consistently; greedy saves little or goes negative at low/mid targets",
		},
	}
	// minBudget finds the smallest budget whose allocation meets the target
	// SNP, by bisection over the budget.
	minBudget := func(alloc func(float64) ([]float64, error), target float64) (float64, error) {
		lo := c.server.IdleWatts * float64(n)
		hi := c.server.MaxWatts * float64(n)
		// Check attainability at the top.
		a, err := alloc(hi)
		if err != nil {
			return 0, err
		}
		if snp, _, _ := c.report(a); snp < target {
			return math.NaN(), nil
		}
		for hi-lo > float64(n)*0.05 {
			mid := (lo + hi) / 2
			a, err := alloc(mid)
			if err != nil {
				return 0, err
			}
			if snp, _, _ := c.report(a); snp >= target {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi, nil
	}
	uniform := func(b float64) ([]float64, error) { return c.uniformAlloc(b), nil }
	greedy := func(b float64) ([]float64, error) { return c.greedyAlloc(b), nil }
	// The bisections probe hundreds of budgets below MaxWatts·n; one DP per
	// knapsack method answers all of them.
	predB, err := c.knapsackBudgeter(c.server.MaxWatts*float64(n), false)
	if err != nil {
		return Table{}, err
	}
	oracleB, err := c.knapsackBudgeter(c.server.MaxWatts*float64(n), true)
	if err != nil {
		return Table{}, err
	}
	pred := predB.Alloc
	oracle := oracleB.Alloc
	for _, target := range []float64{0.90, 0.92, 0.94, 0.96, 0.98} {
		ub, err := minBudget(uniform, target)
		if err != nil {
			return Table{}, err
		}
		save := func(f func(float64) ([]float64, error)) (string, error) {
			b, err := minBudget(f, target)
			if err != nil {
				return "", err
			}
			if math.IsNaN(b) || math.IsNaN(ub) {
				return "n/a", nil
			}
			return fmt.Sprintf("%.2f", 100*(ub-b)/ub), nil
		}
		gs, err := save(greedy)
		if err != nil {
			return Table{}, err
		}
		ps, err := save(pred)
		if err != nil {
			return Table{}, err
		}
		os, err := save(oracle)
		if err != nil {
			return Table{}, err
		}
		ubs := "n/a"
		if !math.IsNaN(ub) {
			ubs = fmt.Sprintf("%.1f", ub/1000)
		}
		t.AddRow(target, ubs, gs, ps, os)
	}
	return t, nil
}

// Fig314 reproduces Figs. 3.14–3.15: the dynamic 75-second run with
// re-budgeting every 15 s, comparing the proposed method's SNP against
// uniform, plus the cap distribution per stage.
func Fig314(scale Scale, seed int64) (Table, error) {
	n := scale.pick(400, 3200)
	c, err := newCh3Cluster(n, false, seed)
	if err != nil {
		return Table{}, err
	}
	// Budget schedule (W/server · n): random caps initially, 0.66 MW-eq at
	// 15 s, re-solve at 30 s, 0.62 MW-eq at 45 s, re-solve at 60 s.
	type stage struct {
		at     int
		per    float64
		solve  bool
		label  string
		random bool
	}
	stages := []stage{
		{at: 0, per: 150, random: true, label: "random init"},
		{at: 15, per: 150, solve: true, label: "0.66MW-eq applied"},
		{at: 30, per: 150, solve: true, label: "re-solve"},
		{at: 45, per: 141, solve: true, label: "0.62MW-eq applied"},
		{at: 60, per: 141, solve: true, label: "re-solve"},
	}
	t := Table{
		ID:      "fig3.14",
		Title:   fmt.Sprintf("SNP over time, re-budgeting every 15 s (%d servers) + cap mix (fig3.15)", n),
		Columns: []string{"t (s)", "stage", "method SNP", "uniform SNP", "caps@130-140", "caps@145-155", "caps@160-165"},
		Notes:   []string{"expected shape: proposed method's SNP consistently above uniform; caps drop when the budget falls at t=45 s"},
	}
	alloc := make([]float64, n)
	uni := make([]float64, n)
	for sIdx, st := range stages {
		if st.random {
			for i := range alloc {
				alloc[i] = c.caps[c.rng.Intn(len(c.caps))]
			}
		} else if st.solve {
			// Workload phases drift between stages: re-observe and 15% of
			// servers change sets.
			for i := range c.sets {
				if c.rng.Float64() < 0.15 {
					c.sets[i] = workload.NewHomoSet(workload.Desktop[c.rng.Intn(len(workload.Desktop))].Perturb(c.rng, 0.05))
				}
			}
			c.observeAll(stats.Mean(alloc))
			a, err := c.knapsackAlloc(st.per*float64(n), false)
			if err != nil {
				return Table{}, err
			}
			copy(alloc, a)
		}
		u := c.uniformAlloc(st.per * float64(n))
		copy(uni, u)
		snp, _, _ := c.report(alloc)
		usnp, _, _ := c.report(uni)
		var lo, mid, hi int
		for _, p := range alloc {
			switch {
			case p <= 140:
				lo++
			case p <= 155:
				mid++
			default:
				hi++
			}
		}
		end := 75
		if sIdx+1 < len(stages) {
			end = stages[sIdx+1].at
		}
		for sec := st.at; sec < end; sec += 5 {
			t.AddRow(sec, st.label, fmt.Sprintf("%.4f", snp), fmt.Sprintf("%.4f", usnp), lo, mid, hi)
		}
	}
	return t, nil
}
