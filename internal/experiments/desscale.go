package experiments

import (
	"fmt"

	"powercap/internal/cluster"
	"powercap/internal/parallel"
)

// DesScale measures what the shared-clock event core buys: the same
// cluster scenario (Poisson workload churn, a budget step, tick-aligned
// sampling) run once on the O(events) scheduler and once with the legacy
// loop structure that sweeps all N servers every simulated second. The two
// runners drive identical event cursors over exact integer power state, so
// every modeled column is bit-identical between them — the table reports
// the deterministic work accounting (events fired, server-state visits)
// whose ratio is the structural speedup; `repro bench -des` measures the
// corresponding wall-clock on the same scenarios.
//
// Sparse regime: 1% of servers churn per minute, samples every 60 s — the
// event loop's work is essentially independent of N·seconds. Dense regime:
// 6% per second with 1 s sampling — the regime where tick loops were an
// honest fit, kept as the floor of the comparison.
func DesScale(scale Scale, seed int64) (Table, error) {
	sizes := []int{1000, 10000}
	if scale == Full {
		sizes = append(sizes, 100000)
	}
	horizon := scale.pick(600, 3600)

	type regime struct {
		name        string
		churn       float64
		sampleEvery int
	}
	regimes := []regime{
		{"sparse", 0.01 / 60, 60},
		{"dense", 0.06, 1},
	}

	t := Table{
		ID:    "desscale",
		Title: "Event-driven vs tick-driven scenario cost (identical results by construction)",
		Columns: []string{
			"n", "regime", "horizon (s)", "churn events", "refreshes",
			"event steps", "event work", "tick work", "work ratio",
			"final power (W)", "violations",
		},
		Notes: []string{
			"both runners replay the same cursors over exact integer milliwatt state, so churn/refresh/power columns are bit-identical — only the work columns (server-state visits) differ",
			"expected shape: the work ratio grows with n in the sparse regime (tick cost is O(n·seconds), event cost is O(events)) and collapses toward the event-count floor in the dense regime",
			"wall-clock for the same scenarios is measured by `repro bench -des`, which asserts the sparse 100k-node scenario beats the tick loop by ≥10x",
		},
	}

	type point struct {
		n int
		r regime
	}
	var points []point
	for _, n := range sizes {
		for _, r := range regimes {
			points = append(points, point{n, r})
		}
	}
	type row struct {
		ev, tick cluster.ScenarioResult
	}
	rows := make([]row, len(points))
	err := parallel.ForEach(len(points), func(k int) error {
		p := points[k]
		sc := cluster.Scenario{
			N:              p.n,
			Seed:           seed + int64(k),
			HorizonSeconds: horizon,
			InitialBudgetW: 130 * float64(p.n),
			BudgetSteps: []cluster.TimedBudget{
				{AtSeconds: float64(horizon) / 2, BudgetW: 115 * float64(p.n)},
			},
			ChurnPerSecond:     p.r.churn,
			SampleEverySeconds: p.r.sampleEvery,
		}
		ev, err := cluster.RunScenarioEvents(sc)
		if err != nil {
			return err
		}
		tick, err := cluster.RunScenarioTicks(sc)
		if err != nil {
			return err
		}
		if ev.ChurnEvents != tick.ChurnEvents || ev.Refreshes != tick.Refreshes ||
			ev.FinalPowerW != tick.FinalPowerW || ev.Violations != tick.Violations {
			return fmt.Errorf("desscale: runners diverged at n=%d %s: event %+v vs tick %+v",
				p.n, p.r.name, ev, tick)
		}
		rows[k] = row{ev: ev, tick: tick}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	for k, p := range points {
		r := rows[k]
		t.AddRow(
			p.n, p.r.name, horizon,
			int(r.ev.ChurnEvents), int(r.ev.Refreshes),
			int(r.ev.Steps), int(r.ev.WorkUnits), int(r.tick.WorkUnits),
			fmt.Sprintf("%.1f", float64(r.tick.WorkUnits)/float64(r.ev.WorkUnits)),
			fmt.Sprintf("%.1f", r.ev.FinalPowerW),
			r.ev.Violations,
		)
	}
	return t, nil
}
