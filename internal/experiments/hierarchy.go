package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Hierarchy demonstrates the nested-budget extension: per-rack PDU limits
// inside the cluster budget, enforced by one extra barrier estimate per
// node. As rack budgets tighten, the attainable utility falls below the
// flat (cluster-only) optimum; the hierarchical engine tracks the
// rack-constrained optimum while never violating any PDU on any round.
func Hierarchy(scale Scale, seed int64) (Table, error) {
	nRacks := scale.pick(5, 10)
	perRack := scale.pick(8, 40)
	n := nRacks * perRack
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return Table{}, err
	}
	us := a.UtilitySlice()
	clusterBudget := 160.0 * float64(n)
	flat, err := solver.Optimal(us, clusterBudget)
	if err != nil {
		return Table{}, err
	}

	// Rack-internal rings plus a leader ring.
	g := topology.NewGraph(n)
	rackOf := make([]int, n)
	for k := 0; k < nRacks; k++ {
		base := k * perRack
		for j := 0; j < perRack; j++ {
			rackOf[base+j] = k
			if perRack > 1 {
				if err := g.AddEdge(base+j, base+(j+1)%perRack); err != nil && perRack > 2 {
					return Table{}, err
				}
			}
		}
	}
	for k := 0; k < nRacks; k++ {
		if err := g.AddEdge(k*perRack, ((k+1)%nRacks)*perRack); err != nil {
			return Table{}, err
		}
	}

	t := Table{
		ID:      "hierarchy",
		Title:   fmt.Sprintf("Nested rack PDU limits (%d racks × %d servers, cluster 160 W/node)", nRacks, perRack),
		Columns: []string{"rack PDU (W/node)", "hier optimum / flat", "DiBA / hier optimum", "worst rack margin (W)", "violations"},
		Notes: []string{
			"expected shape: tighter PDUs cost utility vs the flat optimum; the hierarchical engine stays ≥99% of the rack-constrained optimum with zero PDU violations on any round",
		},
	}
	for _, pduPer := range []float64{185, 165, 155, 148} {
		racks := diba.Racks{RackOf: rackOf, RackBudget: make([]float64, nRacks)}
		sh := solver.Hierarchy{RackOf: rackOf, RackBudget: make([]float64, nRacks)}
		for k := 0; k < nRacks; k++ {
			racks.RackBudget[k] = pduPer * float64(perRack)
			sh.RackBudget[k] = racks.RackBudget[k]
		}
		hopt, err := solver.OptimalHierarchical(us, clusterBudget, sh)
		if err != nil {
			return Table{}, err
		}
		en, err := diba.NewHier(g, us, clusterBudget, racks, diba.Config{})
		if err != nil {
			return Table{}, err
		}
		violations := 0
		worstMargin := racks.RackBudget[0]
		maxIters := scale.pick(15000, 40000)
		for k := 0; k < maxIters; k++ {
			en.Step()
			for rk := range racks.RackBudget {
				margin := racks.RackBudget[rk] - en.RackPower(rk)
				if margin < 0 {
					violations++
				}
				if margin < worstMargin {
					worstMargin = margin
				}
			}
			if en.TotalUtility() >= 0.99*hopt.Utility {
				break
			}
		}
		t.AddRow(pduPer,
			fmt.Sprintf("%.4f", hopt.Utility/flat.Utility),
			fmt.Sprintf("%.4f", en.TotalUtility()/hopt.Utility),
			fmt.Sprintf("%.2f", worstMargin),
			violations)
	}
	return t, nil
}
