package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/dessim"
	"powercap/internal/layout"
	"powercap/internal/stats"
	"powercap/internal/thermal"
)

// ch5Specs are the four heterogeneous server classes of Table 5.1 with
// their power envelopes (idle ≈ 45% of peak, the non-energy-proportional
// behaviour the text cites) and efficiency ranking D > B > A > C.
type ch5Spec struct {
	Name  string
	IdleW float64
	DynW  float64 // extra watts at full utilization
}

var ch5Specs = []ch5Spec{
	{Name: "A", IdleW: 120, DynW: 140}, // i7 920 box
	{Name: "B", IdleW: 100, DynW: 120}, // i5 3450S box
	{Name: "C", IdleW: 160, DynW: 200}, // dual Xeon E5530 box
	{Name: "D", IdleW: 80, DynW: 100},  // Phenom II box
}

// ch5Room is the Chapter 5 evaluation room: 80 racks, 20 per server type,
// with the thermal model scaled to the servers-per-rack in use.
type ch5Room struct {
	room           *thermal.Room
	serversPerRack int
	// typeOf[rack] is the rack's server class index.
	typeOf []int
	// q and rise are coolingFor's reused scratch vectors; the oblivious
	// baseline evaluates dozens of random placements per figure row.
	q, rise []float64
}

func newCh5Room(serversPerRack int) (*ch5Room, error) {
	riseCPerKW := 1.8 * 40 / float64(serversPerRack)
	room, err := thermal.NewDefaultRoom(riseCPerKW, 25) // Ch5 assumes a 25 °C limit
	if err != nil {
		return nil, err
	}
	n := room.N()
	typeOf := make([]int, n)
	for i := range typeOf {
		typeOf[i] = i / (n / len(ch5Specs))
	}
	return &ch5Room{room: room, serversPerRack: serversPerRack, typeOf: typeOf,
		q: make([]float64, n), rise: make([]float64, n)}, nil
}

// rackPowers returns per-rack draw for given per-type utilizations under
// the idle or nap policy (Eqs. 5.3/5.4).
func (r *ch5Room) rackPowers(util []float64, nap bool) []float64 {
	out := make([]float64, len(r.typeOf))
	for rack, ti := range r.typeOf {
		u := util[ti]
		spec := ch5Specs[ti]
		var perServer float64
		switch {
		case nap && u == 0:
			perServer = 0
		default:
			perServer = spec.IdleW + u*spec.DynW
		}
		out[rack] = perServer * float64(r.serversPerRack)
	}
	return out
}

// coolingFor evaluates an assignment's expected cooling power over the
// scenarios.
func (r *ch5Room) coolingFor(p layout.Problem, a layout.Assignment) (coolW, tsup float64) {
	n := p.N()
	q := r.q
	var wsum float64
	var lastTsup float64
	for _, s := range p.Scenarios {
		for loc := 0; loc < n; loc++ {
			q[loc] = s.Power[a[loc]]
		}
		rise := p.Rise.MulVecTo(r.rise, q)
		maxRise := 0.0
		var total float64
		for i, v := range rise {
			if v > maxRise {
				maxRise = v
			}
			total += q[i]
		}
		ts := r.room.RedlineC - maxRise
		lastTsup = ts
		coolW += s.Weight * total / thermal.CoP(ts)
		wsum += s.Weight
	}
	return coolW / wsum, lastTsup
}

// obliviousCooling is the heterogeneity-oblivious baseline: expected
// cooling over random placements.
func (r *ch5Room) obliviousCooling(p layout.Problem, trials int, rng *rand.Rand) float64 {
	var sum float64
	for k := 0; k < trials; k++ {
		c, _ := r.coolingFor(p, layout.RandomOblivious(p.N(), rng))
		sum += c
	}
	return sum / float64(trials)
}

// Table52 reproduces Table 5.2: supply temperature and cooling power of
// the planning methods at full utilization.
func Table52(scale Scale, seed int64) (Table, error) {
	perRack := scale.pick(10, 40)
	r, err := newCh5Room(perRack)
	if err != nil {
		return Table{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	util := []float64{1, 1, 1, 1}
	prob := layout.Problem{
		Rise:      r.room.RiseMatrix(),
		Scenarios: []layout.Scenario{{Weight: 1, Power: r.rackPowers(util, false)}},
	}
	t := Table{
		ID:      "table5.2",
		Title:   fmt.Sprintf("Layout planning at full utilization (80 racks × %d servers)", perRack),
		Columns: []string{"method", "t_sup (°C)", "cooling (kW)", "saving vs oblivious %"},
		Notes: []string{
			"expected shape: anneal (ILP stand-in) ≥ greedy ≥ oblivious savings; paper: ILP 38.5% over oblivious, 5.6% over greedy",
		},
	}
	obl := r.obliviousCooling(prob, 40, rng)
	addRow := func(name string, a layout.Assignment) {
		cool, tsup := r.coolingFor(prob, a)
		t.AddRow(name, fmt.Sprintf("%.1f", tsup), fmt.Sprintf("%.1f", cool/1000),
			fmt.Sprintf("%.1f", 100*(obl-cool)/obl))
	}
	an, err := layout.Anneal(prob, scale.pick(4000, 20000), rng)
	if err != nil {
		return Table{}, err
	}
	addRow("anneal (ILP stand-in)", an)
	ls, err := layout.LocalSearch(prob, nil, scale.pick(4000, 20000), rng)
	if err != nil {
		return Table{}, err
	}
	addRow("local search", ls)
	g, err := layout.Greedy(prob)
	if err != nil {
		return Table{}, err
	}
	addRow("greedy", g)
	t.AddRow("oblivious (random mean)", "-", fmt.Sprintf("%.1f", obl/1000), "0.0")
	return t, nil
}

// utilizationsFor runs the queueing simulator at each arrival rate and
// returns per-type utilizations.
func utilizationsFor(lambdas []float64, perRack int, seed int64, horizon float64) (map[float64][]float64, error) {
	out := make(map[float64][]float64, len(lambdas))
	for _, l := range lambdas {
		res, err := dessim.Run(dessim.Config{
			Types:          dessim.Table51(80, perRack),
			ArrivalRate:    l * float64(perRack) / 40, // scale offered load with cluster size
			MeanJobSeconds: 120,
			Horizon:        horizon,
			Seed:           seed,
		})
		if err != nil {
			return nil, err
		}
		out[l] = res.Utilization
	}
	return out, nil
}

// figCoolingReduction is the shared engine of Figs. 5.4/5.5.
func figCoolingReduction(id, title string, nap bool, scale Scale, seed int64) (Table, error) {
	perRack := scale.pick(10, 40)
	r, err := newCh5Room(perRack)
	if err != nil {
		return Table{}, err
	}
	lambdas := []float64{8, 12, 16, 20, 24}
	utils, err := utilizationsFor(lambdas, perRack, seed, float64(scale.pick(3000, 8000)))
	if err != nil {
		return Table{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"λ (jobs/s)", "mean util", "anneal red. %", "local search red. %", "greedy red. %"},
		Notes: []string{
			"expected shape: all planners cut cooling vs oblivious; anneal ≥ heuristics; paper bands: ILP 18.6–36.9%, heuristics 13.2–33.2%",
		},
	}
	for _, l := range lambdas {
		util := utils[l]
		prob := layout.Problem{
			Rise:      r.room.RiseMatrix(),
			Scenarios: []layout.Scenario{{Weight: 1, Power: r.rackPowers(util, nap)}},
		}
		obl := r.obliviousCooling(prob, 30, rng)
		red := func(a layout.Assignment, err error) (string, error) {
			if err != nil {
				return "", err
			}
			c, _ := r.coolingFor(prob, a)
			return fmt.Sprintf("%.1f", 100*(obl-c)/obl), nil
		}
		an, err := red(layout.Anneal(prob, scale.pick(3000, 12000), rng))
		if err != nil {
			return Table{}, err
		}
		ls, err := red(layout.LocalSearch(prob, nil, scale.pick(3000, 12000), rng))
		if err != nil {
			return Table{}, err
		}
		g, err := red(layout.Greedy(prob))
		if err != nil {
			return Table{}, err
		}
		t.AddRow(l, fmt.Sprintf("%.2f", stats.Mean(util)), an, ls, g)
	}
	return t, nil
}

// Fig54 reproduces Fig. 5.4: cooling-power reduction vs arrival rate when
// idle servers keep drawing idle power.
func Fig54(scale Scale, seed int64) (Table, error) {
	return figCoolingReduction("fig5.4", "Cooling reduction vs oblivious planning (idle policy)", false, scale, seed)
}

// Fig55 reproduces Fig. 5.5: same with idle servers napping at ~zero power.
func Fig55(scale Scale, seed int64) (Table, error) {
	return figCoolingReduction("fig5.5", "Cooling reduction vs oblivious planning (nap policy)", true, scale, seed)
}

// Fig57 reproduces Fig. 5.7: probabilistic layout planning under two
// real-cluster arrival-rate distributions (the institution's and Google's),
// for both power policies.
func Fig57(scale Scale, seed int64) (Table, error) {
	perRack := scale.pick(10, 40)
	r, err := newCh5Room(perRack)
	if err != nil {
		return Table{}, err
	}
	lambdas := []float64{8, 12, 16, 20, 24}
	utils, err := utilizationsFor(lambdas, perRack, seed, float64(scale.pick(3000, 8000)))
	if err != nil {
		return Table{}, err
	}
	// Arrival-rate pdfs: the institution's cluster runs hot (mass at high
	// λ), Google's diurnal trace spends most time at moderate load
	// (Fig. 5.6's character).
	pdfs := map[string][]float64{
		"institution": {0.05, 0.10, 0.20, 0.30, 0.35},
		"google":      {0.15, 0.30, 0.30, 0.17, 0.08},
	}
	rng := rand.New(rand.NewSource(seed))
	t := Table{
		ID:      "fig5.7",
		Title:   "Probabilistic layout planning under arrival-rate distributions",
		Columns: []string{"trace", "policy", "anneal red. %", "local search red. %", "greedy red. %"},
		Notes: []string{
			"expected shape: consistent cooling reductions for both traces and both policies; larger for the hotter institution trace",
		},
	}
	for _, trace := range []string{"institution", "google"} {
		for _, nap := range []bool{false, true} {
			var scens []layout.Scenario
			for li, l := range lambdas {
				scens = append(scens, layout.Scenario{
					Weight: pdfs[trace][li],
					Power:  r.rackPowers(utils[l], nap),
				})
			}
			prob := layout.Problem{Rise: r.room.RiseMatrix(), Scenarios: scens}
			obl := r.obliviousCooling(prob, 20, rng)
			red := func(a layout.Assignment, err error) (string, error) {
				if err != nil {
					return "", err
				}
				c, _ := r.coolingFor(prob, a)
				return fmt.Sprintf("%.1f", 100*(obl-c)/obl), nil
			}
			an, err := red(layout.Anneal(prob, scale.pick(2000, 8000), rng))
			if err != nil {
				return Table{}, err
			}
			ls, err := red(layout.LocalSearch(prob, nil, scale.pick(2000, 8000), rng))
			if err != nil {
				return Table{}, err
			}
			g, err := red(layout.Greedy(prob))
			if err != nil {
				return Table{}, err
			}
			policy := "idle"
			if nap {
				policy = "nap"
			}
			t.AddRow(trace, policy, an, ls, g)
		}
	}
	return t, nil
}
