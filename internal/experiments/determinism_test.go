package experiments

import (
	"reflect"
	"testing"

	"powercap/internal/parallel"
)

// The parallelized sweeps must not leak the worker count into results:
// every sweep point gets its own RNG (seed + index) and writes only its own
// slot, so a table built at -j 8 is identical to one built at -j 1. Timing
// experiments (table4.2) are excluded — their comp columns are wall-clock
// measurements and nondeterministic by nature, at any worker count.
func TestSweepsIdenticalAcrossWorkerCounts(t *testing.T) {
	const seed = 1
	cases := map[string]func() (Table, error){
		"scaling": func() (Table, error) { return Scaling(Quick, seed) },
		"fig4.3":  func() (Table, error) { return Fig43(Quick, seed) },
		"fig4.10": func() (Table, error) { return Fig410(Quick, seed) },
		"fig4.4":  func() (Table, error) { return Fig44(Quick, seed) },
	}
	defer parallel.SetWorkers(0)
	for name, run := range cases {
		parallel.SetWorkers(1)
		serial, err := run()
		if err != nil {
			t.Fatalf("%s at -j1: %v", name, err)
		}
		parallel.SetWorkers(8)
		wide, err := run()
		if err != nil {
			t.Fatalf("%s at -j8: %v", name, err)
		}
		if !reflect.DeepEqual(serial, wide) {
			t.Errorf("%s: table differs between 1 and 8 workers\n-j1: %+v\n-j8: %+v", name, serial, wide)
		}
	}
}
