package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"powercap/internal/dessim"
	"powercap/internal/layout"
	"powercap/internal/stats"
	"powercap/internal/workload"
)

// Characterization figures of Chapter 3 (the analysis plots that motivate
// the design) and the layout/utilization plots of Chapter 5.

// Fig31 reproduces Fig. 3.1: ANP versus power cap for four servers running
// different heterogeneous workload sets — the plot whose crossing curves
// show why greedy throughput-per-Watt allocation misallocates.
func Fig31(seed int64) (Table, error) {
	rng := rand.New(rand.NewSource(seed))
	s := workload.Chapter3Server
	// Two random heterogeneous sets plus two homogeneous extremes whose ANP
	// curves cross: the linear compute-bound hmmer against the
	// steep-then-saturating omnetpp.
	hmmer, err := workload.ByName(workload.Desktop, "hmmer")
	if err != nil {
		return Table{}, err
	}
	omnetpp, err := workload.ByName(workload.Desktop, "omnetpp")
	if err != nil {
		return Table{}, err
	}
	sets := []workload.Set{
		workload.NewHeteroSet(workload.Desktop, rng),
		workload.NewHeteroSet(workload.Desktop, rng),
		workload.NewHomoSet(hmmer),
		workload.NewHomoSet(omnetpp),
	}
	t := Table{
		ID:      "fig3.1",
		Title:   "ANP vs power cap for four heterogeneous workload sets",
		Columns: []string{"cap (W)", "set A", "set B", "set C", "set D"},
		Notes: []string{
			"expected shape: strongly workload-dependent gains; at least one pair of curves crosses (observation 3: greedy misallocates)",
		},
	}
	caps := workload.CapGrid(s, 5)
	series := make([][]float64, 4)
	for i, set := range sets {
		peak := set.Peak(s)
		series[i] = make([]float64, len(caps))
		for j, c := range caps {
			series[i][j] = set.GroundTruth(c, s) / peak
		}
	}
	for j, c := range caps {
		t.AddRow(c, series[0][j], series[1][j], series[2][j], series[3][j])
	}
	// Detect a crossover: a pair of sets whose ANP ordering flips somewhere
	// strictly inside the cap range (every curve ends at exactly 1, so the
	// endpoints carry no ordering information).
	crossover := false
	for a := 0; a < 4 && !crossover; a++ {
		for b := a + 1; b < 4 && !crossover; b++ {
			for j := 1; j < len(caps)-1; j++ {
				if (series[a][j-1]-series[b][j-1])*(series[a][j]-series[b][j]) < 0 {
					crossover = true
					break
				}
			}
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("crossover present: %v", crossover))
	return t, nil
}

// Fig35 reproduces Figs. 3.5–3.6: throughput-vs-cap curves of
// heterogeneous and homogeneous workload combinations. The text's
// observation — "homogeneous data is more quadratic while heterogeneous
// data is more linear" — is quantified as the R² gain of the quadratic fit
// over the linear fit per group.
func Fig35(scale Scale, seed int64) (Table, error) {
	rng := rand.New(rand.NewSource(seed))
	s := workload.Chapter3Server
	caps := workload.CapGrid(s, 5)
	perGroup := scale.pick(10, 30)

	gain := func(hetero bool) (float64, error) {
		var gains []float64
		for k := 0; k < perGroup; k++ {
			var set workload.Set
			if hetero {
				set = workload.NewHeteroSet(workload.Desktop, rng)
			} else {
				set = workload.NewHomoSet(workload.Desktop[rng.Intn(len(workload.Desktop))].Perturb(rng, 0.05))
			}
			xs := make([]float64, len(caps))
			ys := make([]float64, len(caps))
			for j, c := range caps {
				xs[j] = c
				ys[j] = set.GroundTruth(c, s)
			}
			lin, err := stats.PolyFit(xs, ys, 1)
			if err != nil {
				return 0, err
			}
			quad, err := stats.PolyFit(xs, ys, 2)
			if err != nil {
				return 0, err
			}
			predL := make([]float64, len(xs))
			predQ := make([]float64, len(xs))
			for j, x := range xs {
				predL[j] = stats.PolyEval(lin, x)
				predQ[j] = stats.PolyEval(quad, x)
			}
			gains = append(gains, stats.RSquared(predQ, ys)-stats.RSquared(predL, ys))
		}
		return stats.Mean(gains), nil
	}
	het, err := gain(true)
	if err != nil {
		return Table{}, err
	}
	hom, err := gain(false)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig3.5",
		Title:   fmt.Sprintf("Curvature of throughput-vs-cap curves (%d sets per group; Figs. 3.5–3.6)", perGroup),
		Columns: []string{"group", "mean R² gain of quadratic over linear"},
		Notes: []string{
			"expected shape: homogeneous combinations gain more from the quadratic term (more curved); heterogeneous ones average out toward linear",
		},
	}
	t.AddRow("heterogeneous within server", fmt.Sprintf("%.5f", het))
	t.AddRow("homogeneous within server", fmt.Sprintf("%.5f", hom))
	if hom <= het {
		t.Notes = append(t.Notes, "WARNING: homogeneous sets were not more curved")
	}
	return t, nil
}

// Fig37 reproduces Figs. 3.7–3.8: the correlation between the observation
// features (LLC misses; throughput per Watt) and the fitted model
// parameters — the relationships the Eq. 3.8 estimator exploits.
func Fig37(scale Scale, seed int64) (Table, error) {
	rng := rand.New(rand.NewSource(seed))
	s := workload.Chapter3Server
	caps := workload.CapGrid(s, 5)
	n := scale.pick(80, 240)

	var llcs, tpws, a1s []float64
	for k := 0; k < n; k++ {
		var set workload.Set
		if k%2 == 0 {
			set = workload.NewHomoSet(workload.Desktop[rng.Intn(len(workload.Desktop))].Perturb(rng, 0.05))
		} else {
			set = workload.NewHeteroSet(workload.Desktop, rng)
		}
		xs := make([]float64, len(caps))
		ys := make([]float64, len(caps))
		for j, c := range caps {
			xs[j] = c
			ys[j] = set.GroundTruth(c, s)
		}
		coef, err := stats.PolyFit(xs, ys, 2)
		if err != nil {
			return Table{}, err
		}
		obs := set.Observe(145, s, 0.01, rng)
		llcs = append(llcs, obs.LLC)
		tpws = append(tpws, obs.Throughput/obs.Cap)
		a1s = append(a1s, coef[1]) // the slope parameter "a" of the text
	}
	t := Table{
		ID:      "fig3.7",
		Title:   fmt.Sprintf("Feature ↔ model-parameter correlations over %d sets (Figs. 3.7–3.8)", n),
		Columns: []string{"feature", "Spearman ρ with slope parameter a"},
		Notes: []string{
			"expected shape: LLC misses anti-correlate with the power slope (memory-bound gains little); throughput/Watt correlates positively",
		},
	}
	rhoLLC := spearman(llcs, a1s)
	rhoTPW := spearman(tpws, a1s)
	t.AddRow("LLC misses / kinst", fmt.Sprintf("%.3f", rhoLLC))
	t.AddRow("throughput per Watt", fmt.Sprintf("%.3f", rhoTPW))
	if rhoLLC >= 0 {
		t.Notes = append(t.Notes, "WARNING: LLC correlation has the wrong sign")
	}
	if rhoTPW <= 0 {
		t.Notes = append(t.Notes, "WARNING: throughput/Watt correlation has the wrong sign")
	}
	return t, nil
}

// spearman returns the Spearman rank correlation of two paired samples.
func spearman(x, y []float64) float64 {
	rx := ranks(x)
	ry := ranks(y)
	mx, my := stats.Mean(rx), stats.Mean(ry)
	var num, dx, dy float64
	for i := range rx {
		a, b := rx[i]-mx, ry[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	out := make([]float64, len(x))
	for r, i := range idx {
		out[i] = float64(r)
	}
	return out
}

// Fig52 reproduces Fig. 5.2: the planned rack layout itself, as a room map
// with one letter per rack class, for greedy and annealed planning. The
// qualitative signature to look for: the hot class (C) migrates to the
// room's low-recirculation edge positions under both planners, more
// cleanly under annealing.
func Fig52(scale Scale, seed int64) (Table, error) {
	perRack := scale.pick(10, 40)
	r, err := newCh5Room(perRack)
	if err != nil {
		return Table{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	prob := layout.Problem{
		Rise:      r.room.RiseMatrix(),
		Scenarios: []layout.Scenario{{Weight: 1, Power: r.rackPowers([]float64{1, 1, 1, 1}, false)}},
	}
	g, err := layout.Greedy(prob)
	if err != nil {
		return Table{}, err
	}
	an, err := layout.Anneal(prob, scale.pick(4000, 20000), rng)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig5.2",
		Title:   "Planned rack layouts (letter = server class; C is the hottest)",
		Columns: []string{"row", "greedy", "anneal (ILP stand-in)"},
		Notes: []string{
			"expected shape: both planners push the hot C racks toward the room edges; annealing's map is the cleaner of the two",
		},
	}
	classOf := func(rack int) byte { return "ABCD"[r.typeOf[rack]] }
	renderRow := func(a layout.Assignment, row int) string {
		out := make([]byte, 10)
		for col := 0; col < 10; col++ {
			out[col] = classOf(a[row*10+col])
		}
		return string(out)
	}
	for row := 0; row < 8; row++ {
		t.AddRow(row, renderRow(g, row), renderRow(an, row))
	}
	return t, nil
}

// Fig53 reproduces Fig. 5.3: average utilization per server class versus
// the job arrival rate — the greedy scheduler fills the efficient class D
// first, so D saturates while C idles until the load forces it in.
func Fig53(scale Scale, seed int64) (Table, error) {
	perRack := scale.pick(10, 40)
	lambdas := []float64{8, 12, 16, 20, 24}
	utils, err := utilizationsFor(lambdas, perRack, seed, float64(scale.pick(3000, 8000)))
	if err != nil {
		return Table{}, err
	}
	types := dessim.Table51(80, perRack)
	t := Table{
		ID:      "fig5.3",
		Title:   "Average utilization per server class vs arrival rate",
		Columns: []string{"λ (jobs/s)", types[0].Name, types[1].Name, types[2].Name, types[3].Name},
		Notes: []string{
			"expected shape: the efficient class D saturates first at low λ; the least efficient class C fills last; all classes converge at high load",
		},
	}
	for _, l := range lambdas {
		u := utils[l]
		t.AddRow(l,
			fmt.Sprintf("%.2f", u[0]), fmt.Sprintf("%.2f", u[1]),
			fmt.Sprintf("%.2f", u[2]), fmt.Sprintf("%.2f", u[3]))
	}
	last := utils[lambdas[0]]
	if last[3] <= last[2] {
		t.Notes = append(t.Notes, "WARNING: D not preferred over C at low load")
	}
	return t, nil
}
