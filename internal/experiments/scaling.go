package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/parallel"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// Scaling isolates the claim behind Table 4.2's flat DiBA column: the
// number of rounds to reach 99% of the centralized optimum does not grow
// with the cluster size on a ring — each round's communication is constant,
// so neither does the wall-clock. Chordal rings cut the constant further.
func Scaling(scale Scale, seed int64) (Table, error) {
	var ns []int
	if scale == Full {
		ns = []int{100, 400, 1000, 3200, 6400}
	} else {
		ns = []int{100, 400, 1600}
	}
	t := Table{
		ID:      "scaling",
		Title:   "DiBA rounds to 99% of optimal vs cluster size",
		Columns: []string{"# nodes", "ring rounds", "chordal(√N) rounds", "ring final ratio"},
		Notes: []string{
			"expected shape: rounds roughly flat in N on the ring (the paper's ≈constant-iterations claim); chords shave the constant",
		},
	}
	// Cluster sizes are independent sweep points: fan them across workers
	// with one RNG per point (seed + index) so results do not depend on the
	// worker count or execution order.
	type scalingRow struct {
		ringIters, chordIters int
		ringRatio             float64
	}
	rows := make([]scalingRow, len(ns))
	err := parallel.ForEach(len(ns), func(k int) error {
		n := ns[k]
		rng := rand.New(rand.NewSource(seed + int64(k)))
		a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0.01, rng)
		if err != nil {
			return err
		}
		us := a.UtilitySlice()
		budget := 170.0 * float64(n)
		opt, err := solver.Optimal(us, budget)
		if err != nil {
			return err
		}
		run := func(g *topology.Graph) (int, float64, error) {
			en, err := diba.New(g, us, budget, diba.Config{})
			if err != nil {
				return 0, 0, err
			}
			res := en.RunToTarget(opt.Utility, 0.99, 30000)
			return res.Iterations, res.Utility / opt.Utility, nil
		}
		ringIters, ringRatio, err := run(topology.Ring(n))
		if err != nil {
			return err
		}
		stride := intSqrt(n)
		if stride < 2 {
			stride = 2
		}
		chordIters, _, err := run(topology.ChordalRing(n, stride))
		if err != nil {
			return err
		}
		rows[k] = scalingRow{ringIters: ringIters, chordIters: chordIters, ringRatio: ringRatio}
		return nil
	})
	if err != nil {
		return Table{}, err
	}
	for k, n := range ns {
		t.AddRow(n, rows[k].ringIters, rows[k].chordIters, fmt.Sprintf("%.4f", rows[k].ringRatio))
	}
	return t, nil
}

func intSqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
