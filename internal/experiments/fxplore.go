package experiments

import (
	"fmt"
	"math/rand"

	"powercap/internal/firmware"
	"powercap/internal/stats"
)

// FXplore exercises the Chapter 6 search algorithms on the synthetic
// firmware response surface: per-workload runtime improvement and
// exploration cost of FXplore-S vs brute force (the Figs. 6.6/6.8 axes),
// and the sub-clustering trade-off of FXplore-SC as the number of
// sub-clusters κ grows (the Fig. 6.10 axis). Hardware-bound absolute
// numbers are out of scope (see EXPERIMENTS.md); the algorithmic shapes —
// near-optimal results at quadratic instead of exponential reboot cost,
// and monotone improvement with κ — are what this reproduces.
func FXplore(scale Scale, seed int64) (Table, error) {
	rng := rand.New(rand.NewSource(seed))
	nWorkloads := scale.pick(32, 96)
	ws := make([]*firmware.Workload, nWorkloads)
	for i := range ws {
		ws[i] = firmware.Generate(fmt.Sprintf("w%02d", i), 5, rng)
	}

	t := Table{
		ID:      "fxplore",
		Title:   fmt.Sprintf("FXplore search quality and cost (%d workloads, 5 firmware options)", nWorkloads),
		Columns: []string{"configuration policy", "mean runtime vs all-enabled", "reboots", "optimality gap %"},
		Notes: []string{
			"expected shape: FXplore-S matches brute force at half the reboots; sub-clustering trades a little runtime for far fewer reboots, improving with κ (paper: ≈11% runtime gain, 2.2× faster exploration)",
		},
	}

	baseline := 0.0
	bruteTotal, bruteEvals := 0.0, 0
	seqTotal, seqEvals := 0.0, 0
	var seqGaps []float64
	for _, w := range ws {
		baseline += w.Runtime(firmware.AllEnabled(5))
		bf := firmware.BruteForce(w, firmware.MinRuntime)
		bruteTotal += bf.Value
		bruteEvals += bf.Evaluations
		sq := firmware.SequentialSearch(w, firmware.MinRuntime)
		seqTotal += sq.Value
		seqEvals += sq.Evaluations
		seqGaps = append(seqGaps, 100*(sq.Value-bf.Value)/bf.Value)
	}
	t.AddRow("all-enabled (baseline)", "1.000", 0, fmt.Sprintf("%.2f", 100*(baseline-bruteTotal)/bruteTotal))
	t.AddRow("brute force per workload", fmt.Sprintf("%.3f", bruteTotal/baseline), bruteEvals, "0.00")
	t.AddRow("FXplore-S per workload", fmt.Sprintf("%.3f", seqTotal/baseline), seqEvals,
		fmt.Sprintf("%.2f", stats.Mean(seqGaps)))

	for _, k := range []int{2, 4, 8} {
		res, err := firmware.SubClusterSearch(ws, k, firmware.MinRuntime, rng)
		if err != nil {
			return Table{}, err
		}
		var total float64
		for i, w := range ws {
			total += w.Runtime(res.Clusters[res.Assign[i]].Config)
		}
		t.AddRow(fmt.Sprintf("FXplore-SC, κ=%d sub-clusters", k),
			fmt.Sprintf("%.3f", total/baseline), res.Evaluations,
			fmt.Sprintf("%.2f", 100*(total-bruteTotal)/bruteTotal))
	}
	return t, nil
}
