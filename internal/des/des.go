// Package des is the shared-clock discrete-event core the simulators in
// this repository (internal/dessim, internal/cluster, internal/netsim)
// run on. Each simulator decomposes into the three EventSource primitives —
// does it have pending events, when is the next one, process exactly one —
// and a Scheduler merges any number of sources under one clock, always
// advancing the globally earliest event. Work therefore scales with the
// number of events, not with cluster size × simulated seconds: a server
// that does nothing between two events costs nothing between them.
//
// Determinism contract: with the same sources, seeds, and registration
// order, the event sequence is reproduced exactly. Three rules make that
// hold. (1) Heap ordering is total: (Time, Prio, seq) with seq assigned at
// push, so same-time events run in a defined order regardless of heap
// shape. (2) The Scheduler breaks cross-source ties by registration order.
// (3) Randomness is drawn from per-source PartitionedRNG streams, so how
// sources interleave never changes which stream a draw comes from — adding
// a source to a scenario cannot perturb another source's draws.
package des

import (
	"errors"
	"math"
	"math/rand"
)

// Never is the PeekNextEventTime value of a source with nothing scheduled.
var Never = math.Inf(1)

// EventSource is one simulator (or one aspect of a scenario: budget steps,
// churn, sensor faults, link delays) driven by the shared clock.
type EventSource interface {
	// HasPendingEvents reports whether the source has at least one event
	// scheduled.
	HasPendingEvents() bool
	// PeekNextEventTime returns the simulated time of the source's next
	// event without processing it. Undefined (may return Never) when
	// HasPendingEvents is false. A source must never return a time earlier
	// than the last event the scheduler processed from it.
	PeekNextEventTime() float64
	// ProcessNextEvent processes exactly the event PeekNextEventTime
	// announced, possibly scheduling further events on this or (via shared
	// state) no other source.
	ProcessNextEvent() error
}

// Scheduler merges N event sources under one shared clock.
type Scheduler struct {
	sources   []EventSource
	now       float64
	processed uint64
}

// NewScheduler builds a scheduler over the given sources. Registration
// order is the tie-break priority for events at identical times (earlier
// sources first), so it is part of a scenario's deterministic identity.
func NewScheduler(sources ...EventSource) *Scheduler {
	return &Scheduler{sources: sources}
}

// Add registers another source (lower priority than all existing ones).
func (sc *Scheduler) Add(src EventSource) { sc.sources = append(sc.sources, src) }

// Now returns the shared clock: the time of the last processed event.
func (sc *Scheduler) Now() float64 { return sc.now }

// Processed returns how many events have been processed in total.
func (sc *Scheduler) Processed() uint64 { return sc.processed }

// ErrTimeTravel reports a source announcing an event earlier than the
// shared clock — a broken source, not a recoverable condition.
var ErrTimeTravel = errors.New("des: source scheduled an event before the shared clock")

// Step processes the single globally earliest pending event. It returns
// false when no source has pending events.
func (sc *Scheduler) Step() (bool, error) {
	best := -1
	bestAt := Never
	for i, src := range sc.sources {
		if !src.HasPendingEvents() {
			continue
		}
		// Strict < keeps the first-registered source on ties.
		if at := src.PeekNextEventTime(); at < bestAt {
			best, bestAt = i, at
		}
	}
	if best < 0 {
		return false, nil
	}
	if bestAt < sc.now {
		return false, ErrTimeTravel
	}
	sc.now = bestAt
	sc.processed++
	return true, sc.sources[best].ProcessNextEvent()
}

// RunUntil processes every event with time ≤ horizon, then sets the clock
// to the horizon. Events beyond the horizon stay pending.
func (sc *Scheduler) RunUntil(horizon float64) error {
	for {
		best := -1
		bestAt := Never
		for i, src := range sc.sources {
			if !src.HasPendingEvents() {
				continue
			}
			if at := src.PeekNextEventTime(); at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 || bestAt > horizon {
			if sc.now < horizon {
				sc.now = horizon
			}
			return nil
		}
		if bestAt < sc.now {
			return ErrTimeTravel
		}
		sc.now = bestAt
		sc.processed++
		if err := sc.sources[best].ProcessNextEvent(); err != nil {
			return err
		}
	}
}

// Run processes events until every source is drained.
func (sc *Scheduler) Run() error {
	for {
		ok, err := sc.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// PartitionedRNG hands out independent deterministic rand streams keyed by
// a small integer, so every event source (and every entity inside one —
// e.g. per-round link draws vs per-event churn picks) owns its own stream.
// Stream(i) depends only on (seed, i): sources can be added, removed, or
// interleaved differently without changing any other stream's sequence.
type PartitionedRNG struct {
	seed int64
}

// NewPartitionedRNG builds the stream family for one scenario seed.
func NewPartitionedRNG(seed int64) PartitionedRNG { return PartitionedRNG{seed: seed} }

// Stream returns the i-th stream, freshly positioned at its start. Calling
// Stream(i) twice returns two independent copies of the same sequence.
func (p PartitionedRNG) Stream(i uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix(uint64(p.seed), i))))
}

// mix is a splitmix64-style finalizer over (seed, stream): consecutive
// stream ids map to well-separated source seeds, unlike seed+i which would
// collide with a neighboring scenario seed's streams.
func mix(seed, i uint64) uint64 {
	z := seed ^ (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
