package des

// Item is one scheduled event. The core orders items by (Time, Prio, seq):
// time first, then a caller-chosen priority class for same-instant events
// (lower runs first), then insertion order — so two events at the same
// instant and priority always run FIFO, independent of heap shape. Kind,
// Node, Aux, and Val are opaque payload fields for the owning source; the
// core never reads them. Keeping the payload inline (no pointers) is what
// makes the queue an arena: pushing recycles slots freed by earlier pops
// and steady-state push/pop allocates nothing.
type Item struct {
	// Time is the event's simulated time in seconds.
	Time float64
	// Prio breaks ties at equal Time; lower values run first.
	Prio int32
	// Kind, Node, Aux, Val are payload for the event's owner.
	Kind int32
	Node int32
	Aux  int64
	Val  float64
	// seq is assigned by Push and makes the ordering total and stable.
	seq uint64
}

// less is the total event order: (Time, Prio, seq) lexicographically.
func (a *Item) less(b *Item) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.seq < b.seq
}

// Heap is a 4-ary array-indexed min-heap of Items. The wider node fans out
// shallower trees than a binary heap (¼ the sift-up depth) and keeps the
// four children of a node in one or two cache lines, which is where the
// constant-factor win over container/heap comes from — that and the absence
// of interface boxing: Push/Pop move Item values with inlined sifts, so the
// steady-state hot path performs zero allocations.
//
// The zero Heap is ready to use. Reset empties it while keeping capacity,
// so a long-lived simulator reuses one arena across runs.
type Heap struct {
	items   []Item
	nextSeq uint64
}

// Len reports how many events are queued.
func (h *Heap) Len() int { return len(h.items) }

// Grow pre-sizes the arena to hold at least n events without reallocating.
func (h *Heap) Grow(n int) {
	if cap(h.items) < n {
		items := make([]Item, len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
}

// Reset empties the heap, keeping the arena, and restarts the sequence
// counter (a fresh run reproduces the same seq assignment).
func (h *Heap) Reset() {
	h.items = h.items[:0]
	h.nextSeq = 0
}

// Push schedules an event. The heap assigns the stability sequence number;
// any seq set by the caller is overwritten.
func (h *Heap) Push(it Item) {
	it.seq = h.nextSeq
	h.nextSeq++
	h.items = append(h.items, it)
	// Sift up: 4-ary parent of i is (i-1)/4.
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h.items[i].less(&h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

// Peek returns the earliest event without removing it; ok is false when the
// heap is empty.
func (h *Heap) Peek() (Item, bool) {
	if len(h.items) == 0 {
		return Item{}, false
	}
	return h.items[0], true
}

// PeekTime returns the earliest event's time, or +Inf when empty — the shape
// EventSource.PeekNextEventTime wants.
func (h *Heap) PeekTime() float64 {
	if len(h.items) == 0 {
		return Never
	}
	return h.items[0].Time
}

// Pop removes and returns the earliest event. It panics on an empty heap,
// matching the contract that callers check Len or Peek first.
func (h *Heap) Pop() Item {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	if n > 1 {
		h.siftDown()
	}
	return top
}

// siftDown restores the heap property from the root after a Pop. The inner
// loop scans the (up to) four children for the minimum with direct slice
// indexing — no Less/Swap dispatch.
func (h *Heap) siftDown() {
	items := h.items
	n := len(items)
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			return
		}
		// Find the smallest of children c..c+3.
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if items[k].less(&items[min]) {
				min = k
			}
		}
		if !items[min].less(&items[i]) {
			return
		}
		items[i], items[min] = items[min], items[i]
		i = min
	}
}
