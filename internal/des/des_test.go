package des

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestHeapDrainsInOrder: popping everything yields (Time, Prio, seq)
// nondecreasing order for arbitrary pushed sets.
func TestHeapDrainsInOrder(t *testing.T) {
	f := func(times []float64, prios []int8) bool {
		var h Heap
		for i, at := range times {
			if math.IsNaN(at) {
				continue
			}
			var prio int32
			if i < len(prios) {
				prio = int32(prios[i])
			}
			h.Push(Item{Time: at, Prio: prio, Kind: int32(i)})
		}
		var prev *Item
		for h.Len() > 0 {
			it := h.Pop()
			if prev != nil && it.less(prev) {
				return false
			}
			cp := it
			prev = &cp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapStableOnTies: events at identical (Time, Prio) pop in push order.
func TestHeapStableOnTies(t *testing.T) {
	var h Heap
	const n = 100
	for i := 0; i < n; i++ {
		h.Push(Item{Time: 5, Kind: int32(i)})
	}
	for i := 0; i < n; i++ {
		if got := h.Pop().Kind; got != int32(i) {
			t.Fatalf("tie pop %d: got kind %d", i, got)
		}
	}
}

// TestHeapMatchesSort: the pop sequence equals a stable sort by the same
// key, on a mixed push/pop schedule.
func TestHeapMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Heap
	var reference []Item
	seq := 0
	var popped []float64
	for step := 0; step < 5000; step++ {
		if h.Len() == 0 || rng.Intn(3) != 0 {
			it := Item{Time: rng.Float64() * 100, Prio: int32(rng.Intn(3))}
			it.seq = uint64(seq)
			seq++
			h.Push(Item{Time: it.Time, Prio: it.Prio})
			reference = append(reference, it)
		} else {
			got := h.Pop()
			sort.SliceStable(reference, func(a, b int) bool { return reference[a].less(&reference[b]) })
			want := reference[0]
			reference = reference[1:]
			if got.Time != want.Time || got.Prio != want.Prio {
				t.Fatalf("step %d: popped (%v,%d), want (%v,%d)", step, got.Time, got.Prio, want.Time, want.Prio)
			}
			popped = append(popped, got.Time)
		}
	}
	if len(popped) == 0 {
		t.Fatal("mixed schedule never popped")
	}
}

// TestHeapZeroAllocSteadyState: steady-state push/pop on a warm heap must
// not allocate — the guard the ISSUE's bench series also enforces.
func TestHeapZeroAllocSteadyState(t *testing.T) {
	var h Heap
	h.Grow(1024)
	for i := 0; i < 512; i++ {
		h.Push(Item{Time: float64(i % 97)})
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		h.Push(Item{Time: float64(i % 89)})
		h.Pop()
		i++
	})
	if allocs != 0 {
		t.Fatalf("heap push/pop allocated %v allocs/op, want 0", allocs)
	}
}

// stubSource replays a fixed schedule and records the shared order it was
// given CPU.
type stubSource struct {
	times []float64
	next  int
	log   *[]stubEvent
	id    int
}

type stubEvent struct {
	id int
	at float64
}

func (s *stubSource) HasPendingEvents() bool { return s.next < len(s.times) }
func (s *stubSource) PeekNextEventTime() float64 {
	if s.next >= len(s.times) {
		return Never
	}
	return s.times[s.next]
}
func (s *stubSource) ProcessNextEvent() error {
	*s.log = append(*s.log, stubEvent{id: s.id, at: s.times[s.next]})
	s.next++
	return nil
}

// TestSchedulerMergesInTimeOrder: the merged stream is globally sorted and
// ties go to the earlier-registered source.
func TestSchedulerMergesInTimeOrder(t *testing.T) {
	var log []stubEvent
	a := &stubSource{times: []float64{1, 3, 5, 5}, log: &log, id: 0}
	b := &stubSource{times: []float64{2, 3, 5}, log: &log, id: 1}
	sc := NewScheduler(a, b)
	if err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	want := []stubEvent{{0, 1}, {1, 2}, {0, 3}, {1, 3}, {0, 5}, {0, 5}, {1, 5}}
	if len(log) != len(want) {
		t.Fatalf("got %d events, want %d", len(log), len(want))
	}
	for i, ev := range log {
		if ev != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, ev, want[i])
		}
	}
	if sc.Processed() != uint64(len(want)) {
		t.Fatalf("processed %d, want %d", sc.Processed(), len(want))
	}
	if sc.Now() != 5 {
		t.Fatalf("clock at %v, want 5", sc.Now())
	}
}

// TestSchedulerRunUntil: events beyond the horizon stay pending and the
// clock lands exactly on the horizon.
func TestSchedulerRunUntil(t *testing.T) {
	var log []stubEvent
	a := &stubSource{times: []float64{1, 2, 9}, log: &log, id: 0}
	sc := NewScheduler(a)
	if err := sc.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("processed %d events before horizon, want 2", len(log))
	}
	if sc.Now() != 5 {
		t.Fatalf("clock at %v, want horizon 5", sc.Now())
	}
	if !a.HasPendingEvents() {
		t.Fatal("event beyond horizon must stay pending")
	}
	if err := sc.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 || sc.Now() != 10 {
		t.Fatalf("after second horizon: %d events, clock %v", len(log), sc.Now())
	}
}

// TestSchedulerTimeTravel: a source emitting an event before the clock is
// an error, not silent reordering.
func TestSchedulerTimeTravel(t *testing.T) {
	var log []stubEvent
	a := &stubSource{times: []float64{5, 1}, log: &log, id: 0}
	sc := NewScheduler(a)
	if _, err := sc.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Step(); err != ErrTimeTravel {
		t.Fatalf("got %v, want ErrTimeTravel", err)
	}
}

// TestSchedulerStepZeroAlloc: the merge loop itself is allocation-free.
func TestSchedulerStepZeroAlloc(t *testing.T) {
	var log []stubEvent
	log = make([]stubEvent, 0, 1<<20)
	srcs := make([]EventSource, 8)
	for i := range srcs {
		times := make([]float64, 4096)
		for k := range times {
			times[k] = float64(i) + float64(k)*8
		}
		srcs[i] = &stubSource{times: times, log: &log, id: i}
	}
	sc := NewScheduler(srcs...)
	allocs := testing.AllocsPerRun(2000, func() {
		if _, err := sc.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("scheduler step allocated %v allocs/op, want 0", allocs)
	}
}

// TestPartitionedRNGStreamsAreStable: a stream's sequence depends only on
// (seed, id) — re-requesting it replays it, and other streams differ.
func TestPartitionedRNGStreamsAreStable(t *testing.T) {
	p := NewPartitionedRNG(7)
	a1 := p.Stream(3)
	a2 := p.Stream(3)
	b := p.Stream(4)
	same, diff := true, false
	for i := 0; i < 64; i++ {
		x, y, z := a1.Float64(), a2.Float64(), b.Float64()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Fatal("same (seed,id) must replay the same sequence")
	}
	if !diff {
		t.Fatal("different ids must yield different sequences")
	}
	if p.Stream(0).Int63() == NewPartitionedRNG(8).Stream(0).Int63() {
		t.Fatal("different seeds must yield different streams")
	}
}

// TestPartitionedRNGNeighborSeedsDisjoint: the documented motivation for
// the mix — seed s stream 1 must not equal seed s+1 stream 0 (which a
// naive seed+i scheme would collide).
func TestPartitionedRNGNeighborSeedsDisjoint(t *testing.T) {
	a := NewPartitionedRNG(1).Stream(1)
	b := NewPartitionedRNG(2).Stream(0)
	if a.Int63() == b.Int63() {
		t.Fatal("adjacent (seed,stream) pairs must not collide")
	}
}
