// Package solver provides the centralized optimizer for the cluster
// power-budgeting problem (Eqs. 4.1–4.3):
//
//	max Σ r_i(p_i)   s.t.   Σ p_i ≤ P,   p_i ∈ [p_i_idle, p_i_max].
//
// The original evaluation used CVX as the centralized reference. The problem
// is concave with a single coupling constraint, so its KKT system is solved
// exactly by bisection on the shared power price λ: each node's best
// response p_i(λ) = argmax r_i(p) − λp is non-increasing in λ, and the
// optimal λ* makes Σ p_i(λ*) = P (or λ* = 0 when the budget is slack).
// This gives the same optimum CVX produced for the authors, with stdlib
// only. A projected-gradient method is also provided as a generic
// alternative and cross-check.
package solver

import (
	"errors"
	"fmt"
	"math"

	"powercap/internal/workload"
)

// ErrInfeasible is returned when the budget cannot cover every node's idle
// power — no cap assignment can satisfy the constraint.
var ErrInfeasible = errors.New("solver: budget below total idle power")

// Result is the output of a centralized solve.
type Result struct {
	// Alloc is the optimal power cap per node.
	Alloc []float64
	// Price is the optimal dual variable λ* of the budget constraint
	// (0 when the budget is slack).
	Price float64
	// Utility is Σ r_i at the optimum.
	Utility float64
	// Iterations is the number of bisection steps performed.
	Iterations int
}

// bestResponse returns argmax_p r(p) − λp, using the closed form when the
// utility provides one and golden-section search otherwise.
func bestResponse(u workload.Utility, lambda float64) float64 {
	if br, ok := u.(workload.BestResponder); ok {
		return br.BestResponse(lambda)
	}
	// Golden-section search on the concave objective.
	const phi = 0.6180339887498949
	lo, hi := u.MinPower(), u.MaxPower()
	obj := func(p float64) float64 { return u.Value(p) - lambda*p }
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := obj(x1), obj(x2)
	for b-a > 1e-9*(hi-lo) {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = obj(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = obj(x1)
		}
	}
	return (a + b) / 2
}

// Optimal solves the budgeting problem exactly. It returns ErrInfeasible if
// P < Σ p_i_idle. When P ≥ Σ p_i_max the unconstrained optimum (every node
// at its own peak-response cap) is returned with zero price.
func Optimal(us []workload.Utility, budget float64) (Result, error) {
	n := len(us)
	if n == 0 {
		return Result{}, errors.New("solver: no utilities")
	}
	var minSum float64
	for _, u := range us {
		if u.MinPower() >= u.MaxPower() {
			return Result{}, fmt.Errorf("solver: node has empty cap range [%g,%g]", u.MinPower(), u.MaxPower())
		}
		minSum += u.MinPower()
	}
	if budget < minSum {
		return Result{}, fmt.Errorf("%w: budget %.1f < Σ idle %.1f", ErrInfeasible, budget, minSum)
	}

	alloc := make([]float64, n)
	respond := func(lambda float64) float64 {
		var sum float64
		for i, u := range us {
			alloc[i] = bestResponse(u, lambda)
			sum += alloc[i]
		}
		return sum
	}

	// λ = 0: unconstrained responses. If already within budget we are done.
	if sum := respond(0); sum <= budget {
		return finish(us, alloc, 0, 0), nil
	}

	// Bracket λ*: at λ_hi = max gradient at the range bottoms, every node
	// best-responds with its minimum power, which is feasible.
	var lambdaHi float64
	for _, u := range us {
		if g := u.Grad(u.MinPower()); g > lambdaHi {
			lambdaHi = g
		}
	}
	lambdaHi += 1 // strictly above every gradient
	lo, hi := 0.0, lambdaHi
	iters := 0
	for hi-lo > 1e-12*(1+lambdaHi) && iters < 200 {
		mid := (lo + hi) / 2
		if respond(mid) > budget {
			lo = mid
		} else {
			hi = mid
		}
		iters++
	}
	sum := respond(hi) // guaranteed ≤ budget side of the bracket

	// Distribute any residual (from flat spots in best responses) greedily
	// to the nodes with the highest marginal utility without violating caps.
	distributeResidual(us, alloc, budget-sum, hi)
	return finish(us, alloc, hi, iters), nil
}

// distributeResidual hands out leftover watts (from degenerate/linear
// utilities whose best response jumps) in marginal-utility order. For
// strictly concave utilities the residual is ~0 and this is a no-op.
func distributeResidual(us []workload.Utility, alloc []float64, residual, lambda float64) {
	if residual <= 1e-9 {
		return
	}
	for i, u := range us {
		if residual <= 1e-9 {
			return
		}
		// Only nodes whose gradient at the current point still meets the
		// price deserve more power.
		if u.Grad(alloc[i]) >= lambda-1e-9 {
			room := u.MaxPower() - alloc[i]
			give := math.Min(room, residual)
			alloc[i] += give
			residual -= give
		}
	}
}

func finish(us []workload.Utility, alloc []float64, price float64, iters int) Result {
	out := make([]float64, len(alloc))
	copy(out, alloc)
	var util float64
	for i, u := range us {
		util += u.Value(out[i])
	}
	return Result{Alloc: out, Price: price, Utility: util, Iterations: iters}
}

// PGOptions configure ProjectedGradient.
type PGOptions struct {
	// Step is the gradient step size; 0 selects a conservative default.
	Step float64
	// MaxIters bounds the iteration count; 0 selects 10000.
	MaxIters int
	// Tol stops when the utility improves by less than Tol per sweep;
	// 0 selects 1e-10.
	Tol float64
}

// ProjectedGradient solves the same problem by gradient ascent with
// projection onto the budget simplex intersected with the box constraints.
// It is slower than Optimal but makes no structural assumptions beyond
// concavity; the tests cross-check the two.
func ProjectedGradient(us []workload.Utility, budget float64, opt PGOptions) (Result, error) {
	n := len(us)
	if n == 0 {
		return Result{}, errors.New("solver: no utilities")
	}
	var minSum float64
	for _, u := range us {
		minSum += u.MinPower()
	}
	if budget < minSum {
		return Result{}, fmt.Errorf("%w: budget %.1f < Σ idle %.1f", ErrInfeasible, budget, minSum)
	}
	if opt.Step == 0 {
		opt.Step = 0.5
	}
	if opt.MaxIters == 0 {
		opt.MaxIters = 10000
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-10
	}

	// Start feasible: idle power plus an even share of the slack.
	alloc := make([]float64, n)
	slack := budget - minSum
	for i, u := range us {
		alloc[i] = u.MinPower() + math.Min(slack/float64(n), u.MaxPower()-u.MinPower())
	}
	prevUtil := math.Inf(-1)
	iters := 0
	for ; iters < opt.MaxIters; iters++ {
		for i, u := range us {
			alloc[i] += opt.Step * u.Grad(alloc[i])
		}
		projectBudgetBox(us, alloc, budget)
		var util float64
		for i, u := range us {
			util += u.Value(alloc[i])
		}
		if util-prevUtil < opt.Tol && iters > 10 {
			prevUtil = util
			break
		}
		prevUtil = util
	}
	return finish(us, alloc, 0, iters), nil
}

// projectBudgetBox projects alloc onto {p : Σp ≤ B, min ≤ p ≤ max} by
// clamping to the box and, if the budget is exceeded, bisecting a uniform
// shift µ such that Σ clamp(p_i − µ) = B (the standard simplex projection
// generalized to boxes).
func projectBudgetBox(us []workload.Utility, alloc []float64, budget float64) {
	var sum float64
	for i, u := range us {
		if alloc[i] < u.MinPower() {
			alloc[i] = u.MinPower()
		}
		if alloc[i] > u.MaxPower() {
			alloc[i] = u.MaxPower()
		}
		sum += alloc[i]
	}
	if sum <= budget {
		return
	}
	// Bisect the shift µ ∈ [0, max span].
	var hiShift float64
	for i, u := range us {
		if s := alloc[i] - u.MinPower(); s > hiShift {
			hiShift = s
		}
	}
	lo, hi := 0.0, hiShift
	shifted := func(mu float64) float64 {
		var s float64
		for i, u := range us {
			v := alloc[i] - mu
			if v < u.MinPower() {
				v = u.MinPower()
			}
			s += v
		}
		return s
	}
	for hi-lo > 1e-12*(1+hiShift) {
		mid := (lo + hi) / 2
		if shifted(mid) > budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	for i, u := range us {
		v := alloc[i] - hi
		if v < u.MinPower() {
			v = u.MinPower()
		}
		alloc[i] = v
	}
}
