package solver_test

import (
	"fmt"

	"powercap/internal/solver"
	"powercap/internal/workload"
)

// Two servers share 320 W: one compute-bound (steep utility), one
// memory-bound (flat). The oracle gives the steep one the lion's share.
func ExampleOptimal() {
	steep, _ := workload.NewQuadratic(0, 6, -0.01, 110, 200)
	flat, _ := workload.NewQuadratic(0, 1, -0.004, 110, 200)
	res, err := solver.Optimal([]workload.Utility{steep, flat}, 320)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("steep: %.0f W, flat: %.0f W, price %.2f\n", res.Alloc[0], res.Alloc[1], res.Price)
	// Output: steep: 200 W, flat: 120 W, price 0.04
}
