package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/metrics"
	"powercap/internal/workload"
)

func mkCluster(t testing.TB, n int, seed int64) []workload.Utility {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	return a.UtilitySlice()
}

func TestOptimalSlackBudget(t *testing.T) {
	us := mkCluster(t, 20, 1)
	// Budget above everyone's max: each node takes its peak-response cap,
	// price zero.
	res, err := Optimal(us, 20*250)
	if err != nil {
		t.Fatal(err)
	}
	if res.Price != 0 {
		t.Fatalf("price = %v, want 0 for slack budget", res.Price)
	}
	for i, u := range us {
		// With λ=0 the best response maximizes r alone.
		want := u.(workload.Quadratic).BestResponse(0)
		if math.Abs(res.Alloc[i]-want) > 1e-9 {
			t.Fatalf("node %d alloc %v, want %v", i, res.Alloc[i], want)
		}
	}
}

func TestOptimalInfeasible(t *testing.T) {
	us := mkCluster(t, 10, 2)
	_, err := Optimal(us, 999) // < 10×100 idle
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestOptimalEmpty(t *testing.T) {
	if _, err := Optimal(nil, 100); err == nil {
		t.Fatal("empty cluster must error")
	}
}

func TestOptimalTightBudgetFeasibleAndKKT(t *testing.T) {
	us := mkCluster(t, 50, 3)
	budget := 50 * 150.0 // midway: genuinely constraining
	res, err := Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.Feasible(us, res.Alloc, budget, 1e-6) {
		t.Fatal("optimal allocation must be feasible")
	}
	if got := metrics.TotalPower(res.Alloc); math.Abs(got-budget) > 0.01 {
		t.Fatalf("constraining budget must bind: Σp = %v, budget %v", got, budget)
	}
	if res.Price <= 0 {
		t.Fatal("binding budget must have positive price")
	}
	// KKT: every interior node's gradient equals the price; boundary nodes
	// may deviate in the right direction.
	for i, u := range us {
		g := u.Grad(res.Alloc[i])
		switch {
		case res.Alloc[i] <= u.MinPower()+1e-6:
			if g > res.Price+1e-4 {
				t.Fatalf("node %d at min with gradient %v above price %v", i, g, res.Price)
			}
		case res.Alloc[i] >= u.MaxPower()-1e-6:
			if g < res.Price-1e-4 {
				t.Fatalf("node %d at max with gradient %v below price %v", i, g, res.Price)
			}
		default:
			if math.Abs(g-res.Price) > 1e-4 {
				t.Fatalf("node %d interior gradient %v != price %v", i, g, res.Price)
			}
		}
	}
}

func TestOptimalBeatsUniformAndRandom(t *testing.T) {
	us := mkCluster(t, 100, 4)
	budget := 100 * 166.0
	res, err := Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	uniform := make([]float64, len(us))
	for i := range uniform {
		uniform[i] = budget / float64(len(us))
	}
	uu, _ := metrics.TotalUtility(us, uniform)
	if res.Utility < uu-1e-9 {
		t.Fatalf("optimal %v must beat uniform %v", res.Utility, uu)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		randAlloc := make([]float64, len(us))
		var sum float64
		for i, u := range us {
			randAlloc[i] = u.MinPower() + rng.Float64()*(u.MaxPower()-u.MinPower())
			sum += randAlloc[i]
		}
		if sum > budget { // scale into feasibility
			scale := (budget - 100*100) / (sum - 100*100)
			for i := range randAlloc {
				randAlloc[i] = 100 + (randAlloc[i]-100)*scale
			}
		}
		ru, _ := metrics.TotalUtility(us, randAlloc)
		if res.Utility < ru-1e-6 {
			t.Fatalf("optimal %v beaten by random feasible %v", res.Utility, ru)
		}
	}
}

func TestOptimalMatchesBruteForceOnSmallDiscrete(t *testing.T) {
	// Two nodes, exhaustive grid cross-check.
	q1, _ := workload.NewQuadratic(0, 6, -0.02, 100, 200)
	q2, _ := workload.NewQuadratic(0, 3, -0.005, 100, 200)
	us := []workload.Utility{q1, q2}
	budget := 320.0
	res, err := Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	best := -1.0
	for p1 := 100.0; p1 <= 200; p1 += 0.25 {
		p2 := budget - p1
		if p2 < 100 || p2 > 200 {
			continue
		}
		v := q1.Value(p1) + q2.Value(p2)
		if v > best {
			best = v
		}
	}
	if math.Abs(res.Utility-best) > 1e-3*best {
		t.Fatalf("bisection utility %v vs brute force %v", res.Utility, best)
	}
}

func TestProjectedGradientMatchesOptimal(t *testing.T) {
	us := mkCluster(t, 30, 5)
	budget := 30 * 160.0
	exact, err := Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := ProjectedGradient(us, budget, PGOptions{Step: 2, MaxIters: 50000, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.Feasible(us, pg.Alloc, budget, 1e-6) {
		t.Fatal("PG allocation must be feasible")
	}
	if rel := (exact.Utility - pg.Utility) / exact.Utility; rel > 1e-3 {
		t.Fatalf("PG within 0.1%% of optimal expected; gap %v", rel)
	}
}

func TestProjectedGradientInfeasible(t *testing.T) {
	us := mkCluster(t, 5, 6)
	if _, err := ProjectedGradient(us, 10, PGOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if _, err := ProjectedGradient(nil, 10, PGOptions{}); err == nil {
		t.Fatal("empty cluster must error")
	}
}

func TestBestResponseNumericFallback(t *testing.T) {
	// A utility that hides its closed form: wrap a quadratic.
	q, _ := workload.NewQuadratic(0, 5, -0.02, 100, 200)
	w := opaque{q}
	for _, lambda := range []float64{0.1, 1, 3} {
		got := bestResponse(w, lambda)
		want := q.BestResponse(lambda)
		if math.Abs(got-want) > 1e-4 {
			t.Fatalf("λ=%v: numeric %v vs closed form %v", lambda, got, want)
		}
	}
}

// opaque strips the BestResponder implementation from a quadratic.
type opaque struct{ q workload.Quadratic }

func (o opaque) Value(p float64) float64 { return o.q.Value(p) }
func (o opaque) Grad(p float64) float64  { return o.q.Grad(p) }
func (o opaque) MinPower() float64       { return o.q.MinPower() }
func (o opaque) MaxPower() float64       { return o.q.MaxPower() }
func (o opaque) Peak() float64           { return o.q.Peak() }

// Property: on random clusters and budgets, Optimal is feasible and not
// worse than uniform.
func TestOptimalDominatesUniformProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.1, 0.01, rng)
		if err != nil {
			return false
		}
		us := a.UtilitySlice()
		budget := float64(n) * (110 + rng.Float64()*100)
		res, err := Optimal(us, budget)
		if err != nil {
			return false
		}
		if !metrics.Feasible(us, res.Alloc, budget, 1e-6) {
			return false
		}
		per := budget / float64(n)
		uniform := make([]float64, n)
		for i, u := range us {
			uniform[i] = math.Min(per, u.MaxPower())
		}
		uu, _ := metrics.TotalUtility(us, uniform)
		return res.Utility >= uu-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
