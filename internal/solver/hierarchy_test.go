package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"powercap/internal/workload"
)

func hierFor(n, racks int) Hierarchy {
	h := Hierarchy{RackOf: make([]int, n), RackBudget: make([]float64, racks)}
	per := n / racks
	for i := range h.RackOf {
		h.RackOf[i] = i / per
	}
	return h
}

func TestHierarchyValidate(t *testing.T) {
	h := hierFor(8, 2)
	h.RackBudget = []float64{1000, 1000}
	if err := h.Validate(8); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(9); err == nil {
		t.Fatal("length mismatch must fail")
	}
	bad := h
	bad.RackOf = append([]int(nil), h.RackOf...)
	bad.RackOf[3] = 7
	if err := bad.Validate(8); err == nil {
		t.Fatal("rack index out of range must fail")
	}
	neg := h
	neg.RackBudget = []float64{1000, -5}
	if err := neg.Validate(8); err == nil {
		t.Fatal("non-positive rack budget must fail")
	}
	members := h.Members()
	if len(members) != 2 || len(members[0]) != 4 || members[1][0] != 4 {
		t.Fatalf("Members wrong: %v", members)
	}
}

func TestOptimalHierarchicalSlackRacksMatchesFlat(t *testing.T) {
	us := mkCluster(t, 20, 101)
	h := hierFor(20, 4)
	for k := range h.RackBudget {
		h.RackBudget[k] = 5 * 400 // far above anything 5 servers can draw
	}
	budget := 20 * 160.0
	flat, err := Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := OptimalHierarchical(us, budget, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flat.Utility-hier.Utility) > 1e-6*flat.Utility {
		t.Fatalf("slack racks must reduce to the flat problem: %v vs %v", hier.Utility, flat.Utility)
	}
}

func TestOptimalHierarchicalBindingRack(t *testing.T) {
	us := mkCluster(t, 20, 102)
	h := hierFor(20, 4)
	for k := range h.RackBudget {
		h.RackBudget[k] = 5 * 300
	}
	h.RackBudget[1] = 5 * 130 // one starved rack
	budget := 20 * 165.0
	res, err := OptimalHierarchical(us, budget, h)
	if err != nil {
		t.Fatal(err)
	}
	// The starved rack's members must respect its PDU.
	var rack1 float64
	for i := 5; i < 10; i++ {
		rack1 += res.Alloc[i]
	}
	if rack1 > h.RackBudget[1]+1e-6 {
		t.Fatalf("rack 1 draw %v exceeds its PDU %v", rack1, h.RackBudget[1])
	}
	// And the utility must fall below the unconstrained optimum.
	flat, err := Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utility >= flat.Utility {
		t.Fatal("binding PDU must cost utility")
	}
	// Every allocation inside its box.
	for i, u := range us {
		if res.Alloc[i] < u.MinPower()-1e-9 || res.Alloc[i] > u.MaxPower()+1e-9 {
			t.Fatalf("node %d cap %v out of range", i, res.Alloc[i])
		}
	}
}

func TestOptimalHierarchicalSlackClusterBudget(t *testing.T) {
	// Cluster budget slack, only rack budgets bind: price 0 path.
	us := mkCluster(t, 8, 103)
	h := hierFor(8, 2)
	h.RackBudget = []float64{4 * 150, 4 * 150}
	res, err := OptimalHierarchical(us, 8*1000, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Price != 0 {
		t.Fatalf("slack cluster budget must have zero price, got %v", res.Price)
	}
	for k := 0; k < 2; k++ {
		var sum float64
		for i := 4 * k; i < 4*(k+1); i++ {
			sum += res.Alloc[i]
		}
		if sum > h.RackBudget[k]+1e-6 {
			t.Fatalf("rack %d over PDU: %v", k, sum)
		}
	}
}

func TestOptimalHierarchicalErrors(t *testing.T) {
	us := mkCluster(t, 8, 104)
	if _, err := OptimalHierarchical(nil, 100, Hierarchy{}); err == nil {
		t.Fatal("empty must error")
	}
	h := hierFor(8, 2)
	h.RackBudget = []float64{100, 4 * 300}
	if _, err := OptimalHierarchical(us, 8*200, h); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("rack below idle must be ErrInfeasible, got %v", err)
	}
	h.RackBudget = []float64{4 * 300, 4 * 300}
	if _, err := OptimalHierarchical(us, 10, h); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("cluster below idle must be ErrInfeasible, got %v", err)
	}
}

// Property: the hierarchical optimum never exceeds the flat optimum, and
// tightening one rack can only lower it.
func TestHierarchicalMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 15; trial++ {
		n := 12
		a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.1, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		us := a.UtilitySlice()
		budget := float64(n) * (150 + rng.Float64()*30)
		flat, err := Optimal(us, budget)
		if err != nil {
			t.Fatal(err)
		}
		h := hierFor(n, 3)
		for k := range h.RackBudget {
			h.RackBudget[k] = 4 * (150 + rng.Float64()*40)
		}
		loose, err := OptimalHierarchical(us, budget, h)
		if err != nil {
			t.Fatal(err)
		}
		if loose.Utility > flat.Utility+1e-6 {
			t.Fatal("hierarchical cannot beat flat")
		}
		tight := h
		tight.RackBudget = append([]float64(nil), h.RackBudget...)
		tight.RackBudget[0] = 4 * 135
		tres, err := OptimalHierarchical(us, budget, tight)
		if err != nil {
			t.Fatal(err)
		}
		if tres.Utility > loose.Utility+1e-6 {
			t.Fatal("tightening a rack cannot raise utility")
		}
	}
}
