package solver

import (
	"errors"
	"fmt"

	"powercap/internal/workload"
)

// Hierarchical budgets. Real power delivery is nested: servers hang off
// rack PDUs with their own breaker limits, and the racks share the
// facility budget. The optimization becomes
//
//	max Σ r_i(p_i)
//	s.t. Σ_i p_i ≤ P            (cluster)
//	     Σ_{i∈rack k} p_i ≤ B_k (each rack)
//	     p_i ∈ [idle_i, max_i]
//
// Still concave with nested coupling constraints; the KKT system solves by
// bisection at two levels: an outer cluster price λ, and for each rack an
// inner price µ_k = max(λ, rack's own binding price) — a rack whose PDU
// binds charges its members more than the shared price.

// Hierarchy assigns each node to a rack and each rack a budget.
type Hierarchy struct {
	// RackOf[i] is node i's rack index in [0, len(RackBudget)).
	RackOf []int
	// RackBudget[k] is rack k's PDU limit in watts.
	RackBudget []float64
}

// Validate checks shape and ranges against n nodes.
func (h Hierarchy) Validate(n int) error {
	if len(h.RackOf) != n {
		return fmt.Errorf("solver: RackOf has %d entries, want %d", len(h.RackOf), n)
	}
	for i, k := range h.RackOf {
		if k < 0 || k >= len(h.RackBudget) {
			return fmt.Errorf("solver: node %d assigned to invalid rack %d", i, k)
		}
	}
	for k, b := range h.RackBudget {
		if b <= 0 {
			return fmt.Errorf("solver: rack %d has non-positive budget", k)
		}
	}
	return nil
}

// Members returns the node lists per rack.
func (h Hierarchy) Members() [][]int {
	out := make([][]int, len(h.RackBudget))
	for i, k := range h.RackOf {
		out[k] = append(out[k], i)
	}
	return out
}

// OptimalHierarchical solves the rack-constrained problem exactly.
func OptimalHierarchical(us []workload.Utility, clusterBudget float64, h Hierarchy) (Result, error) {
	n := len(us)
	if n == 0 {
		return Result{}, errors.New("solver: no utilities")
	}
	if err := h.Validate(n); err != nil {
		return Result{}, err
	}
	members := h.Members()
	// Feasibility: every rack and the cluster must cover idle power.
	var minTotal float64
	for k, m := range members {
		var rackMin float64
		for _, i := range m {
			rackMin += us[i].MinPower()
		}
		if rackMin > h.RackBudget[k] {
			return Result{}, fmt.Errorf("%w: rack %d idle power %.1f exceeds its budget %.1f",
				ErrInfeasible, k, rackMin, h.RackBudget[k])
		}
		minTotal += rackMin
	}
	if clusterBudget < minTotal {
		return Result{}, fmt.Errorf("%w: cluster budget %.1f < Σ idle %.1f", ErrInfeasible, clusterBudget, minTotal)
	}

	alloc := make([]float64, n)
	// rackRespond fills alloc for rack k at cluster price λ, respecting the
	// rack budget via an inner price bisection, and returns the rack total.
	rackRespond := func(k int, lambda float64) float64 {
		m := members[k]
		sumAt := func(mu float64) float64 {
			var s float64
			for _, i := range m {
				alloc[i] = bestResponse(us[i], mu)
				s += alloc[i]
			}
			return s
		}
		if s := sumAt(lambda); s <= h.RackBudget[k] {
			return s
		}
		// Rack binds: raise the rack price above λ until the PDU fits.
		lo, hi := lambda, lambda
		for _, i := range m {
			if g := us[i].Grad(us[i].MinPower()); g > hi {
				hi = g
			}
		}
		hi++
		for it := 0; it < 100 && hi-lo > 1e-12*(1+hi); it++ {
			mid := (lo + hi) / 2
			if sumAt(mid) > h.RackBudget[k] {
				lo = mid
			} else {
				hi = mid
			}
		}
		return sumAt(hi)
	}
	respond := func(lambda float64) float64 {
		var total float64
		for k := range members {
			total += rackRespond(k, lambda)
		}
		return total
	}

	iters := 0
	if sum := respond(0); sum <= clusterBudget {
		return finish(us, alloc, 0, 0), nil
	}
	var lambdaHi float64
	for _, u := range us {
		if g := u.Grad(u.MinPower()); g > lambdaHi {
			lambdaHi = g
		}
	}
	lambdaHi++
	lo, hi := 0.0, lambdaHi
	for hi-lo > 1e-12*(1+lambdaHi) && iters < 200 {
		mid := (lo + hi) / 2
		if respond(mid) > clusterBudget {
			lo = mid
		} else {
			hi = mid
		}
		iters++
	}
	respond(hi)
	return finish(us, alloc, hi, iters), nil
}
