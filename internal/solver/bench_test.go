package solver

import (
	"math/rand"
	"testing"

	"powercap/internal/workload"
)

func benchUtilities(b *testing.B, n int) []workload.Utility {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	return a.UtilitySlice()
}

func benchmarkOptimal(b *testing.B, n int) {
	us := benchUtilities(b, n)
	budget := 170.0 * float64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimal(us, budget); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimal400(b *testing.B)  { benchmarkOptimal(b, 400) }
func BenchmarkOptimal6400(b *testing.B) { benchmarkOptimal(b, 6400) }

func BenchmarkOptimalHierarchical(b *testing.B) {
	const n = 400
	us := benchUtilities(b, n)
	h := Hierarchy{RackOf: make([]int, n), RackBudget: make([]float64, 10)}
	for i := range h.RackOf {
		h.RackOf[i] = i / (n / 10)
	}
	for k := range h.RackBudget {
		h.RackBudget[k] = 160 * float64(n/10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalHierarchical(us, 165*float64(n), h); err != nil {
			b.Fatal(err)
		}
	}
}
