// Package parallel holds the repository's deterministic fan-out
// primitives. One process-wide worker setting (the repro binary's -j flag)
// governs every layer that fans work across goroutines: the experiment
// runner, the per-experiment sweep loops, and the cluster simulation's
// snapshot evaluation.
//
// The contract throughout is that parallelism must never change results:
// work items are independent, write only their own index, and are reduced
// in index order afterwards — so output is byte-identical at any worker
// count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured fan-out width; 0 selects GOMAXPROCS.
var workers atomic.Int64

// SetWorkers sets the process-wide fan-out width. n ≤ 0 restores the
// default (GOMAXPROCS).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the resolved fan-out width (at least 1).
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0,n) on up to Workers() goroutines
// and returns the error of the lowest failing index (deterministic whatever
// the interleaving). fn must write only state owned by its index.
func ForEach(n int, fn func(i int) error) error {
	return ForEachN(n, Workers(), fn)
}

// ForEachN is ForEach with an explicit worker count (0 = GOMAXPROCS).
func ForEachN(n, w int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
