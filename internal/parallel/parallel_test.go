package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		if err := ForEachN(n, w, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("w=%d: index %d visited %d times", w, i, got)
			}
		}
	}
}

// ForEach must report the lowest failing index's error so failures are
// deterministic whatever the goroutine interleaving.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	want := errors.New("boom 3")
	for _, w := range []int{1, 4} {
		err := ForEachN(10, w, func(i int) error {
			if i == 3 {
				return want
			}
			if i == 7 {
				return fmt.Errorf("boom 7")
			}
			return nil
		})
		if err != want {
			t.Fatalf("w=%d: got %v, want %v", w, err, want)
		}
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d, want >= 1", got)
	}
}
