// Package baseline implements the comparison allocators of the evaluation:
// uniform power division, the throughput-per-Watt greedy of prior work
// ("previous-greedy"), and the primal-dual decomposition scheme
// (Algorithm 3) that Chapter 4 benchmarks DiBA against.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"powercap/internal/workload"
)

// ErrInfeasible mirrors the solver package: the budget cannot cover every
// node's idle power.
var ErrInfeasible = errors.New("baseline: budget below total idle power")

func checkFeasible(us []workload.Utility, budget float64) error {
	if len(us) == 0 {
		return errors.New("baseline: no utilities")
	}
	var minSum float64
	for _, u := range us {
		minSum += u.MinPower()
	}
	if budget < minSum {
		return fmt.Errorf("%w: budget %.1f < Σ idle %.1f", ErrInfeasible, budget, minSum)
	}
	return nil
}

// Uniform divides the budget evenly, clamped to each node's cap range. Any
// watts freed by clamping at the top are redistributed evenly among nodes
// with headroom so the budget is fully used when possible.
func Uniform(us []workload.Utility, budget float64) ([]float64, error) {
	if err := checkFeasible(us, budget); err != nil {
		return nil, err
	}
	n := len(us)
	alloc := make([]float64, n)
	capped := make([]bool, n)
	remaining := budget
	free := n
	// Iteratively spread: evenly among uncapped nodes, clamping as needed.
	for free > 0 {
		share := remaining / float64(free)
		progressed := false
		for i, u := range us {
			if capped[i] {
				continue
			}
			v := share
			if v >= u.MaxPower() {
				v = u.MaxPower()
				progressed = true
				capped[i] = true
				free--
			} else if v < u.MinPower() {
				v = u.MinPower()
			}
			alloc[i] = v
		}
		var sum float64
		for _, v := range alloc {
			sum += v
		}
		if !progressed {
			break
		}
		remaining = budget
		for i := range alloc {
			if capped[i] {
				remaining -= alloc[i]
			}
		}
	}
	return alloc, nil
}

// Greedy is the "previous-greedy" method: rank servers by current
// throughput per Watt (measured at a common probe cap) and hand out power
// in rank order — the more efficient a server looks right now, the more
// power it gets. As the text observes, this chases raw throughput and can
// misallocate when ANP curves cross (Fig. 3.1, observation 3).
func Greedy(us []workload.Utility, budget float64) ([]float64, error) {
	if err := checkFeasible(us, budget); err != nil {
		return nil, err
	}
	n := len(us)
	type ranked struct {
		idx int
		tpw float64
	}
	rs := make([]ranked, n)
	for i, u := range us {
		probe := u.MinPower()
		rs[i] = ranked{idx: i, tpw: u.Value(probe) / probe}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].tpw > rs[b].tpw })

	alloc := make([]float64, n)
	remaining := budget
	for i, u := range us {
		alloc[i] = u.MinPower()
		remaining -= u.MinPower()
	}
	for _, r := range rs {
		if remaining <= 0 {
			break
		}
		u := us[r.idx]
		give := math.Min(remaining, u.MaxPower()-u.MinPower())
		alloc[r.idx] += give
		remaining -= give
	}
	return alloc, nil
}

// PDOptions configure the primal-dual decomposition algorithm.
type PDOptions struct {
	// Step is the price update step ε; 0 selects 1e-4 (per-node watts scale).
	Step float64
	// MaxIters bounds iterations; 0 selects 20000.
	MaxIters int
	// Tol is the convergence threshold on the budget residual per node;
	// 0 selects 1e-3 W.
	Tol float64
}

// PDResult reports the primal-dual run.
type PDResult struct {
	Alloc      []float64
	Price      float64
	Iterations int
	// Converged is false when MaxIters was exhausted first.
	Converged bool
	// PriceTrace holds λ_t per iteration (for diagnostics/plots).
	PriceTrace []float64
}

// PrimalDual runs Algorithm 3: the coordinator iterates the price
//
//	λ_{t+1} = [λ_t − ε (P − Σ p_i^t)]⁺
//
// and every node best-responds p_i^{t+1} = argmax r_i(p) − λ_t p. The
// iteration count it returns drives the communication-time model of
// Table 4.2.
func PrimalDual(us []workload.Utility, budget float64, opt PDOptions) (PDResult, error) {
	if err := checkFeasible(us, budget); err != nil {
		return PDResult{}, err
	}
	if opt.MaxIters == 0 {
		opt.MaxIters = 20000
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-2
	}
	n := len(us)
	alloc := make([]float64, n)
	lambda := 0.0
	trace := make([]float64, 0, 256)
	respond := func(l float64) float64 {
		var sum float64
		for i, u := range us {
			if br, ok := u.(workload.BestResponder); ok {
				alloc[i] = br.BestResponse(l)
			} else {
				alloc[i] = numericBestResponse(u, l)
			}
			sum += alloc[i]
		}
		return sum
	}
	if opt.Step == 0 {
		// Condition the price update on the aggregate response slope
		// |dΣp/dλ|. The slope varies along λ as nodes clamp at their cap
		// ranges, so sample it across the whole relevant bracket and step
		// with 1/max|slope|: then every update is a contraction and the
		// iteration cannot oscillate.
		var lambdaHi float64
		for _, u := range us {
			if g := u.Grad(u.MinPower()); g > lambdaHi {
				lambdaHi = g
			}
		}
		if lambdaHi <= 0 {
			lambdaHi = 1
		}
		const samples = 16
		var maxSlope float64
		prevL, prevG := 0.0, respond(0)
		for k := 1; k <= samples; k++ {
			l := lambdaHi * float64(k) / samples
			g := respond(l)
			if s := math.Abs(g-prevG) / (l - prevL); s > maxSlope {
				maxSlope = s
			}
			prevL, prevG = l, g
		}
		if maxSlope < 1e-9 {
			maxSlope = float64(n)
		}
		opt.Step = 1 / maxSlope
	}
	iters := 0
	converged := false
	for ; iters < opt.MaxIters; iters++ {
		sum := respond(lambda)
		residual := budget - sum
		trace = append(trace, lambda)
		if math.Abs(residual) <= opt.Tol*float64(n) && (residual >= 0 || lambda > 0) {
			// Stop when the residual is small; if the budget is slack with
			// λ=0 that is the unconstrained optimum and also fine.
			converged = true
			break
		}
		if residual >= 0 && lambda == 0 {
			// Slack budget at zero price: unconstrained optimum reached.
			converged = true
			break
		}
		lambda = math.Max(0, lambda-opt.Step*residual)
	}
	// Safety: if the final responses still exceed the budget (e.g. MaxIters
	// hit while λ was catching up), nudge the price up until feasible so the
	// reported allocation is always usable.
	for respond(lambda) > budget && lambda < 1e6 {
		lambda = (lambda + 1e-6) * 1.02
	}
	out := make([]float64, n)
	copy(out, alloc)
	return PDResult{Alloc: out, Price: lambda, Iterations: len(trace), Converged: converged, PriceTrace: trace}, nil
}

func numericBestResponse(u workload.Utility, lambda float64) float64 {
	const phi = 0.6180339887498949
	a, b := u.MinPower(), u.MaxPower()
	span := b - a
	obj := func(p float64) float64 { return u.Value(p) - lambda*p }
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := obj(x1), obj(x2)
	for b-a > 1e-9*span {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = obj(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = obj(x1)
		}
	}
	return (a + b) / 2
}
