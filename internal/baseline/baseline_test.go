package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powercap/internal/metrics"
	"powercap/internal/solver"
	"powercap/internal/workload"
)

func mkCluster(t testing.TB, n int, seed int64) []workload.Utility {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	return a.UtilitySlice()
}

func TestUniformEvenSplit(t *testing.T) {
	us := mkCluster(t, 10, 1)
	budget := 1500.0
	alloc, err := Uniform(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range alloc {
		if math.Abs(p-150) > 1e-9 {
			t.Fatalf("node %d alloc %v, want 150", i, p)
		}
	}
	if !metrics.Feasible(us, alloc, budget, 1e-9) {
		t.Fatal("uniform must be feasible")
	}
}

func TestUniformClampsAndRedistributes(t *testing.T) {
	// One node with a low max cap forces redistribution.
	qSmall, _ := workload.NewQuadratic(0, 1, 0, 100, 120)
	qBig1, _ := workload.NewQuadratic(0, 1, 0, 100, 300)
	qBig2, _ := workload.NewQuadratic(0, 1, 0, 100, 300)
	us := []workload.Utility{qSmall, qBig1, qBig2}
	budget := 600.0
	alloc, err := Uniform(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 120 {
		t.Fatalf("small node alloc %v, want capped 120", alloc[0])
	}
	if math.Abs(alloc[1]-240) > 1e-6 || math.Abs(alloc[2]-240) > 1e-6 {
		t.Fatalf("big nodes must share the slack evenly: %v", alloc)
	}
	if math.Abs(metrics.TotalPower(alloc)-budget) > 1e-6 {
		t.Fatalf("budget must be fully used: %v", metrics.TotalPower(alloc))
	}
}

func TestUniformInfeasible(t *testing.T) {
	us := mkCluster(t, 10, 2)
	if _, err := Uniform(us, 500); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if _, err := Uniform(nil, 500); err == nil {
		t.Fatal("empty cluster must error")
	}
}

func TestGreedyFeasibleAndOrdered(t *testing.T) {
	us := mkCluster(t, 20, 3)
	budget := 20 * 140.0
	alloc, err := Greedy(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.Feasible(us, alloc, budget, 1e-6) {
		t.Fatal("greedy must be feasible")
	}
	if math.Abs(metrics.TotalPower(alloc)-budget) > 1e-6 {
		t.Fatal("greedy must spend the whole budget when caps allow")
	}
	// The highest throughput-per-Watt node must be saturated before any
	// lower-ranked node receives more than idle.
	bestIdx, bestTPW := -1, -1.0
	for i, u := range us {
		if tpw := u.Value(u.MinPower()) / u.MinPower(); tpw > bestTPW {
			bestTPW, bestIdx = tpw, i
		}
	}
	if alloc[bestIdx] != us[bestIdx].MaxPower() {
		t.Fatalf("highest-TPW node %d not saturated: %v", bestIdx, alloc[bestIdx])
	}
}

func TestGreedyInfeasible(t *testing.T) {
	us := mkCluster(t, 5, 4)
	if _, err := Greedy(us, 100); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestPrimalDualConvergesToOptimal(t *testing.T) {
	us := mkCluster(t, 50, 5)
	budget := 50 * 160.0
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := PrimalDual(us, budget, PDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !pd.Converged {
		t.Fatal("PD must converge on this instance")
	}
	if !metrics.Feasible(us, pd.Alloc, budget*1.001, 1e-6) {
		t.Fatal("PD allocation grossly infeasible")
	}
	pu, _ := metrics.TotalUtility(us, pd.Alloc)
	if gap := (opt.Utility - pu) / opt.Utility; gap > 0.01 {
		t.Fatalf("PD utility gap %v > 1%%", gap)
	}
	if math.Abs(pd.Price-opt.Price)/math.Max(opt.Price, 1e-9) > 0.1 {
		t.Fatalf("PD price %v far from optimal price %v", pd.Price, opt.Price)
	}
}

func TestPrimalDualSlackBudget(t *testing.T) {
	us := mkCluster(t, 10, 6)
	pd, err := PrimalDual(us, 10*500, PDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !pd.Converged || pd.Price != 0 {
		t.Fatalf("slack budget: converged=%v price=%v, want true/0", pd.Converged, pd.Price)
	}
	if pd.Iterations != 1 {
		t.Fatalf("slack budget should converge immediately, took %d", pd.Iterations)
	}
}

func TestPrimalDualInfeasible(t *testing.T) {
	us := mkCluster(t, 5, 7)
	if _, err := PrimalDual(us, 100, PDOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestPrimalDualIterationTraceGrows(t *testing.T) {
	us := mkCluster(t, 30, 8)
	pd, err := PrimalDual(us, 30*150, PDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.PriceTrace) != pd.Iterations {
		t.Fatalf("trace length %d != iterations %d", len(pd.PriceTrace), pd.Iterations)
	}
	if pd.PriceTrace[0] != 0 {
		t.Fatal("price must start at 0")
	}
}

// Property: PD ends feasible (within tolerance) and between uniform and
// optimal utility on random constrained instances.
func TestPrimalDualSandwichProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
		if err != nil {
			return false
		}
		us := a.UtilitySlice()
		budget := float64(n) * (120 + rng.Float64()*60)
		opt, err := solver.Optimal(us, budget)
		if err != nil {
			return false
		}
		pd, err := PrimalDual(us, budget, PDOptions{})
		if err != nil {
			return false
		}
		pu, _ := metrics.TotalUtility(us, pd.Alloc)
		return pu <= opt.Utility+1e-6 && metrics.Feasible(us, pd.Alloc, budget*1.002, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// opaque hides the closed-form best response, forcing the golden-section
// fallback.
type opaque struct{ q workload.Quadratic }

func (o opaque) Value(p float64) float64 { return o.q.Value(p) }
func (o opaque) Grad(p float64) float64  { return o.q.Grad(p) }
func (o opaque) MinPower() float64       { return o.q.MinPower() }
func (o opaque) MaxPower() float64       { return o.q.MaxPower() }
func (o opaque) Peak() float64           { return o.q.Peak() }

func TestPrimalDualNumericFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a, err := workload.Assign(workload.HPC, 12, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	us := make([]workload.Utility, 12)
	for i, q := range a.Utilities {
		us[i] = opaque{q}
	}
	budget := 12 * 160.0
	pd, err := PrimalDual(us, budget, PDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !pd.Converged {
		t.Fatal("numeric-fallback PD must converge")
	}
	// Cross-check against the closed-form path.
	ref, err := PrimalDual(a.UtilitySlice(), budget, PDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pd.Price-ref.Price) > 0.05*math.Max(ref.Price, 1e-9) {
		t.Fatalf("fallback price %v far from closed-form %v", pd.Price, ref.Price)
	}
}

func TestGreedyExactBudgetAtIdle(t *testing.T) {
	us := mkCluster(t, 5, 22)
	budget := 0.0
	for _, u := range us {
		budget += u.MinPower()
	}
	alloc, err := Greedy(us, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range us {
		if alloc[i] != u.MinPower() {
			t.Fatalf("node %d must sit at idle with a floor budget", i)
		}
	}
}
