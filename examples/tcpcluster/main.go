// TCP cluster: the "working prototype" path — one DiBA agent per goroutine,
// each with its own real TCP listener on localhost, wired into a ring
// exactly as the per-machine daemon (cmd/dibad) would be across a rack.
// No agent ever sees more than its two neighbors' estimates, yet the
// cluster lands within 1% of the centralized optimum.
//
// With -fail N the example becomes a fault drill: agent N's transport is
// severed mid-run (a crash), the survivors detect the silence, gossip the
// dead node's frozen state, shrink their budget view by its share, activate
// the stride -chord standby links to keep the ring connected, and converge
// on the reduced budget — with the conservation identity Σe = Σp − P′
// holding on the survivor set.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"powercap/internal/diba"
	"powercap/internal/solver"
	"powercap/internal/workload"
)

func main() {
	fail := flag.Int("fail", -1, "agent id to crash mid-run (-1 = fault-free)")
	chord := flag.Int("chord", 3, "standby chord stride used for repair when -fail is set")
	wire := flag.String("wire", "binary", "wire codec the agents write: binary or json")
	flag.Parse()
	codec, err := diba.ParseWireCodec(*wire)
	if err != nil {
		log.Fatal(err)
	}

	const (
		n      = 12
		budget = 12 * 170.0
		rounds = 3000
	)
	srv := workload.DefaultServer
	rng := rand.New(rand.NewSource(3))
	assign, err := workload.Assign(workload.HPC, n, srv, 0.05, 0.01, rng)
	if err != nil {
		log.Fatal(err)
	}
	us := assign.UtilitySlice()

	// Start one TCP transport per agent on an OS-assigned port.
	transports := make([]*diba.TCPTransport, n)
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		// Heartbeats carry RTT pings; the echoes feed the per-peer health
		// verdicts the summary prints next to the wire statistics.
		tr, err := diba.NewTCPTransport(i, "127.0.0.1:0",
			diba.WithWireCodec(codec), diba.WithHeartbeat(50*time.Millisecond))
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		transports[i] = tr
		addrs[i] = tr.Addr()
	}
	fmt.Printf("started %d agents on localhost (e.g. agent 0 at %s)\n", n, addrs[0])

	totalIdle := srv.IdleWatts * float64(n)
	results := make([]diba.AgentState, n)
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			neighbors := []int{(i + n - 1) % n, (i + 1) % n}
			links := append([]int{}, neighbors...)
			var standby []int
			if *fail >= 0 {
				for _, c := range []int{(i + *chord) % n, (i - *chord + n) % n} {
					if c != i && c != neighbors[0] && c != neighbors[1] {
						standby = append(standby, c)
					}
				}
				links = append(links, standby...)
			}
			if err := transports[i].ConnectNeighbors(links, addrs, 5*time.Second); err != nil {
				errs[i] = err
				return
			}
			agent, err := diba.NewAgent(i, neighbors, us[i], budget, n, totalIdle, diba.Config{}, transports[i])
			if err != nil {
				errs[i] = err
				return
			}
			if *fail >= 0 {
				agent.SetStandby(standby)
				agent.SetFaultPolicy(diba.FaultPolicy{
					GatherTimeout: 250 * time.Millisecond,
					Recover:       true,
					OnEvent: func(ev diba.FaultEvent) {
						log.Printf("agent %d round %d: %s node %d: %s", i, ev.Round, ev.Kind, ev.Node, ev.Info)
					},
				})
				if i == *fail {
					// The victim runs a few hundred rounds, then its process
					// "dies": the transport is torn down mid-protocol and the
					// goroutine exits without a farewell.
					for r := 0; r < 300; r++ {
						if errs[i] = agent.StepOnce(); errs[i] != nil {
							return
						}
					}
					results[i] = diba.AgentState{ID: i, Power: agent.Power(), E: agent.Estimate(), Rounds: 300}
					transports[i].Close()
					return
				}
			}
			results[i], errs[i] = agent.Run(rounds)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("agent %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)

	var wt diba.WireStats
	for _, tr := range transports {
		s := tr.WireTotals()
		wt.MsgsSent += s.MsgsSent
		wt.BytesSent += s.BytesSent
		wt.Flushes += s.Flushes
	}
	if wt.MsgsSent > 0 && wt.Flushes > 0 {
		fmt.Printf("wire[%s]: %d msgs in %d B over %d flushes (%.1f B/msg, %.1f msgs/flush)\n",
			codec, wt.MsgsSent, wt.BytesSent, wt.Flushes,
			float64(wt.BytesSent)/float64(wt.MsgsSent), float64(wt.MsgsSent)/float64(wt.Flushes))
	}

	// Per-peer gray-failure verdicts from the ping-echo estimators: every
	// link should read healthy here (suspicion ~0, nobody degraded) — the
	// point is that the health plane exists on the same sockets the round
	// traffic used. A crashed agent's silence shows up as suspicion > 0 on
	// its neighbors' rows.
	for i, tr := range transports {
		if i == *fail {
			continue
		}
		stats := tr.RTTStats()
		peers := make([]int, 0, len(stats))
		for p := range stats {
			if stats[p].Samples > 0 {
				peers = append(peers, p)
			}
		}
		sort.Ints(peers)
		if len(peers) == 0 {
			continue
		}
		var sb strings.Builder
		for _, p := range peers {
			st := stats[p]
			verdict := "ok"
			if st.Degraded {
				verdict = "DEGRADED"
			}
			fmt.Fprintf(&sb, "  peer %d rtt %v/%v susp %.2f %s",
				p, st.Mean.Round(10*time.Microsecond), st.P99.Round(10*time.Microsecond),
				st.Suspicion, verdict)
		}
		fmt.Printf("health[%2d]:%s\n", i, sb.String())
	}

	var total, utility float64
	var sumE float64
	fmt.Printf("\n%5s %-5s %9s\n", "agent", "bench", "cap")
	for i, st := range results {
		tag := ""
		if i == *fail {
			tag = "  (crashed at round 300)"
		}
		fmt.Printf("%5d %-5s %8.2fW%s\n", i, assign.Benchmarks[i].Name, st.Power, tag)
		if i == *fail {
			continue
		}
		total += st.Power
		sumE += st.E
		utility += us[i].Value(st.Power)
	}
	if *fail >= 0 {
		// Survivors must agree on the dead set and the shrunk budget, and the
		// conservation identity must hold on it.
		view := results[(*fail+1)%n]
		for i, st := range results {
			if i == *fail {
				continue
			}
			if len(st.Dead) != 1 || st.Dead[0] != *fail || st.Budget != view.Budget {
				log.Fatalf("agent %d disagrees: dead=%v budget=%.3f (want dead=[%d] budget=%.3f)", i, st.Dead, st.Budget, *fail, view.Budget)
			}
		}
		gap := sumE - (total - view.Budget)
		fmt.Printf("\nsurvivors agree: dead=%v, budget view %.2fW (was %.0fW)\n", view.Dead, view.Budget, budget)
		fmt.Printf("conservation on survivors: Σe − (Σp − P′) = %.2e\n", gap)
		if math.Abs(gap) > 1e-6 {
			log.Fatalf("conservation violated after failure: gap %v", gap)
		}
		fmt.Printf("total %.1fW of %.2fW post-failure budget (violation-free: %v), %v\n",
			total, view.Budget, total <= view.Budget, elapsed.Round(time.Millisecond))
		return
	}
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal %.1fW of %.0fW budget (violation-free: %v)\n", total, budget, total <= budget)
	fmt.Printf("utility %.2f = %.2f%% of centralized optimum, %d rounds over real sockets in %v\n",
		utility, 100*utility/opt.Utility, rounds, elapsed.Round(time.Millisecond))
}
