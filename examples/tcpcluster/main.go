// TCP cluster: the "working prototype" path — one DiBA agent per goroutine,
// each with its own real TCP listener on localhost, wired into a ring
// exactly as the per-machine daemon (cmd/dibad) would be across a rack.
// No agent ever sees more than its two neighbors' estimates, yet the
// cluster lands within 1% of the centralized optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"powercap/internal/diba"
	"powercap/internal/solver"
	"powercap/internal/workload"
)

func main() {
	const (
		n      = 12
		budget = 12 * 170.0
		rounds = 3000
	)
	srv := workload.DefaultServer
	rng := rand.New(rand.NewSource(3))
	assign, err := workload.Assign(workload.HPC, n, srv, 0.05, 0.01, rng)
	if err != nil {
		log.Fatal(err)
	}
	us := assign.UtilitySlice()

	// Start one TCP transport per agent on an OS-assigned port.
	transports := make([]*diba.TCPTransport, n)
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		tr, err := diba.NewTCPTransport(i, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		transports[i] = tr
		addrs[i] = tr.Addr()
	}
	fmt.Printf("started %d agents on localhost (e.g. agent 0 at %s)\n", n, addrs[0])

	totalIdle := srv.IdleWatts * float64(n)
	results := make([]diba.AgentState, n)
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			neighbors := []int{(i + n - 1) % n, (i + 1) % n}
			if err := transports[i].ConnectNeighbors(neighbors, addrs, 5*time.Second); err != nil {
				errs[i] = err
				return
			}
			agent, err := diba.NewAgent(i, neighbors, us[i], budget, n, totalIdle, diba.Config{}, transports[i])
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = agent.Run(rounds)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("agent %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)

	var total, utility float64
	fmt.Printf("\n%5s %-5s %9s\n", "agent", "bench", "cap")
	for i, st := range results {
		fmt.Printf("%5d %-5s %8.2fW\n", i, assign.Benchmarks[i].Name, st.Power)
		total += st.Power
		utility += us[i].Value(st.Power)
	}
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal %.1fW of %.0fW budget (violation-free: %v)\n", total, budget, total <= budget)
	fmt.Printf("utility %.2f = %.2f%% of centralized optimum, %d rounds over real sockets in %v\n",
		utility, 100*utility/opt.Utility, rounds, elapsed.Round(time.Millisecond))
}
