// Layout planning: place 80 racks of four heterogeneous server classes in
// the machine room to minimize cooling power (Chapter 5). The planner sees
// a probabilistic utilization forecast (two load scenarios) and compares
// greedy, local search and simulated annealing against heterogeneity-
// oblivious placement.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"powercap/internal/layout"
	"powercap/internal/thermal"
)

func main() {
	room, err := thermal.NewDefaultRoom(1.8/1.0, 25)
	if err != nil {
		log.Fatal(err)
	}
	n := room.N() // 80 racks

	// Four server classes, 20 racks each, with distinct power envelopes.
	type class struct {
		name       string
		idleW      float64 // whole-rack idle draw
		dynW       float64 // extra at full utilization
		utilByLoad [2]float64
	}
	classes := []class{
		{"A (i7 920)", 4800, 5600, [2]float64{0.35, 0.9}},
		{"B (i5 3450S)", 4000, 4800, [2]float64{0.55, 0.95}},
		{"C (2×E5530)", 6400, 8000, [2]float64{0.2, 0.85}},
		{"D (Phenom II)", 3200, 4000, [2]float64{0.75, 1.0}},
	}
	scenario := func(load int, weight float64) layout.Scenario {
		pow := make([]float64, n)
		for rack := 0; rack < n; rack++ {
			c := classes[rack/(n/len(classes))]
			pow[rack] = c.idleW + c.utilByLoad[load]*c.dynW
		}
		return layout.Scenario{Weight: weight, Power: pow}
	}
	prob := layout.Problem{
		Rise: room.RiseMatrix(),
		Scenarios: []layout.Scenario{
			scenario(0, 0.6), // typical day
			scenario(1, 0.4), // peak load
		},
	}

	rng := rand.New(rand.NewSource(5))
	cooling := func(a layout.Assignment) (float64, float64) {
		// Expected cooling over the scenarios at the max safe supply temp.
		var cool, wsum float64
		var tsup float64
		q := make([]float64, n)
		for _, s := range prob.Scenarios {
			for loc := 0; loc < n; loc++ {
				q[loc] = s.Power[a[loc]]
			}
			rise := prob.Rise.MulVec(q)
			maxRise, total := 0.0, 0.0
			for i, v := range rise {
				if v > maxRise {
					maxRise = v
				}
				total += q[i]
			}
			tsup = 25 - maxRise
			cool += s.Weight * total / thermal.CoP(tsup)
			wsum += s.Weight
		}
		return cool / wsum, tsup
	}

	var oblSum float64
	const trials = 40
	for k := 0; k < trials; k++ {
		c, _ := cooling(layout.RandomOblivious(n, rng))
		oblSum += c
	}
	obl := oblSum / trials

	report := func(name string, a layout.Assignment, err error) {
		if err != nil {
			log.Fatal(err)
		}
		c, tsup := cooling(a)
		fmt.Printf("%-22s cooling %7.1f kW  t_sup %5.1f °C  saving %5.1f%%\n",
			name, c/1000, tsup, 100*(obl-c)/obl)
	}
	fmt.Printf("%-22s cooling %7.1f kW  (baseline)\n", "oblivious (random)", obl/1000)
	g, gerr := layout.Greedy(prob)
	report("greedy", g, gerr)
	ls, lerr := layout.LocalSearch(prob, nil, 15000, rng)
	report("local search", ls, lerr)
	an, aerr := layout.Anneal(prob, 15000, rng)
	report("anneal (ILP stand-in)", an, aerr)

	// Show where the hot (class C) racks land in the annealed plan: they
	// should migrate to the room's low-recirculation edge positions.
	fmt.Println("\nannealed placement by row (C = hottest class):")
	for row := 0; row < 8; row++ {
		fmt.Printf("  row %d: ", row)
		for col := 0; col < 10; col++ {
			rack := an[row*10+col]
			fmt.Printf("%c", classes[rack/(n/len(classes))].name[0])
		}
		fmt.Println()
	}
}
