// Firmware tuning (Chapter 6 extension): explore server firmware
// configurations with FXplore-S instead of brute force, partition a
// workload fleet into sub-clusters with FXplore-SC, and map fresh
// workloads online without a single extra reboot.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"powercap/internal/firmware"
)

func main() {
	rng := rand.New(rand.NewSource(6))

	// 1. One workload, one server: sequential search vs brute force.
	w := firmware.Generate("cg-like", 5, rng)
	bf := firmware.BruteForce(w, firmware.MinRuntime)
	sq := firmware.SequentialSearch(w, firmware.MinRuntime)
	fmt.Printf("single workload (%d firmware options):\n", w.NumOptions())
	fmt.Printf("  all-enabled baseline : runtime %.1f s\n", w.Runtime(firmware.AllEnabled(5)))
	fmt.Printf("  brute force          : runtime %.1f s with %2d reboots → %s\n", bf.Value, bf.Evaluations, bf.Best)
	fmt.Printf("  FXplore-S            : runtime %.1f s with %2d reboots → %s\n", sq.Value, sq.Evaluations, sq.Best)
	en := firmware.SequentialSearch(w, firmware.MinEnergy)
	fmt.Printf("  FXplore-S (energy)   : energy %.0f J → %s\n", en.Value, en.Best)

	// 2. A fleet of 32 workloads, 4 sub-clusters.
	ws := make([]*firmware.Workload, 32)
	for i := range ws {
		ws[i] = firmware.Generate(fmt.Sprintf("w%02d", i), 5, rng)
	}
	res, err := firmware.SubClusterSearch(ws, 4, firmware.MinRuntime, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfleet of %d workloads → 4 sub-clusters (%d reboots total):\n", len(ws), res.Evaluations)
	var clustered, baseline float64
	for i, w := range ws {
		clustered += w.Runtime(res.Clusters[res.Assign[i]].Config)
		baseline += w.Runtime(firmware.AllEnabled(5))
	}
	for c, cl := range res.Clusters {
		fmt.Printf("  sub-cluster %d: %2d workloads, config %s\n", c, len(cl.Members), cl.Config)
	}
	fmt.Printf("  total runtime %.0f s vs %.0f s all-enabled (%.1f%% faster)\n",
		clustered, baseline, 100*(baseline-clustered)/baseline)

	// 3. Online mapping: new workloads land on a sub-cluster from their
	// performance counters alone.
	fmt.Println("\nonline mapping of fresh workloads (no reboots):")
	var mapped, base float64
	for i := 0; i < 5; i++ {
		fresh := firmware.Generate(fmt.Sprintf("new%d", i), 5, rng)
		c, cfg, err := res.Map(fresh.Features)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  new%d → sub-cluster %d (%s): %.1f s (all-enabled %.1f s)\n",
			i, c, cfg, fresh.Runtime(cfg), fresh.Runtime(firmware.AllEnabled(5)))
		mapped += fresh.Runtime(cfg)
		base += fresh.Runtime(firmware.AllEnabled(5))
	}
	fmt.Printf("  aggregate: %.1f%% faster than all-enabled\n", 100*(base-mapped)/base)
}
