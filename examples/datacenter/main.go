// Datacenter: the Chapter 3 pipeline end to end — a total facility budget
// is split self-consistently between computing and cooling (Algorithm 1),
// with the computing share allocated by the predictor-driven
// multiple-choice knapsack budgeter over discrete power caps.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"powercap/internal/knapsack"
	"powercap/internal/predict"
	"powercap/internal/stats"
	"powercap/internal/thermal"
	"powercap/internal/workload"
)

func main() {
	const (
		nServers = 800 // 80 racks × 10 servers
		racks    = 80
		totalMW  = 0.168 // total facility budget (0.67 MW-equivalent at 3200 servers)
	)
	srv := workload.Chapter3Server
	caps := workload.CapGrid(srv, 5)
	rng := rand.New(rand.NewSource(11))

	// 1. Train the throughput predictor on characterization data.
	train, _, err := predict.TrainTestSplit(workload.Desktop, srv, caps, 150, 1, 0.01, rng)
	if err != nil {
		log.Fatal(err)
	}
	model, err := predict.Train(predict.QuadraticLLCTP, train)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Current cluster state: workload sets and one runtime observation
	// per server at the present cap.
	sets := make([]workload.Set, nServers)
	obs := make([]workload.Observation, nServers)
	for i := range sets {
		sets[i] = workload.NewHeteroSet(workload.Desktop, rng)
		obs[i] = sets[i].Observe(145, srv, 0.01, rng)
	}

	// 3. Thermal model of the room (the stand-in for the one-time CFD run).
	room, err := thermal.NewDefaultRoom(1.8*40/float64(nServers/racks), 24)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The computing budgeter: knapsack over predicted ANPs. Transient
	// intermediate budgets below the idle floor are clamped (the fixed
	// point itself is feasible).
	minComputing := srv.IdleWatts * nServers
	budgeter := func(bs float64) ([]float64, error) {
		if bs < minComputing {
			bs = minComputing
		}
		choices, err := knapsack.CapGridChoices(nServers, caps, func(i int, cap float64) float64 {
			return model.Predict(obs[i], cap)
		})
		if err != nil {
			return nil, err
		}
		p := knapsack.Problem{Choices: choices, Budget: bs, StepW: 5}
		sol, err := knapsack.Solve(p)
		if err != nil {
			return nil, err
		}
		alloc := knapsack.Alloc(p, sol)
		rackPow := make([]float64, racks)
		for i, w := range alloc {
			rackPow[i/(nServers/racks)] += w
		}
		return rackPow, nil
	}

	// 5. Self-consistent total partition (Algorithm 1).
	total := totalMW * 1e6
	part, err := room.SelfConsistent(total, budgeter, 50, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total budget     %8.1f kW\n", total/1000)
	fmt.Printf("computing        %8.1f kW\n", part.Computing/1000)
	fmt.Printf("cooling          %8.1f kW (%.1f%% of total)\n",
		part.Cooling/1000, 100*part.Cooling/total)
	fmt.Printf("CRAC supply      %8.1f °C (CoP %.2f)\n", part.SupplyC, thermal.CoP(part.SupplyC))
	fmt.Printf("converged        %v in %d iterations\n", part.Converged, len(part.Steps))

	// 6. Final server caps under the computing budget, and their quality
	// against ground truth.
	choices, err := knapsack.CapGridChoices(nServers, caps, func(i int, cap float64) float64 {
		return model.Predict(obs[i], cap)
	})
	if err != nil {
		log.Fatal(err)
	}
	p := knapsack.Problem{Choices: choices, Budget: part.Computing, StepW: 5}
	sol, err := knapsack.Solve(p)
	if err != nil {
		log.Fatal(err)
	}
	alloc := knapsack.Alloc(p, sol)
	anps := make([]float64, nServers)
	for i := range anps {
		anps[i] = sets[i].GroundTruth(alloc[i], srv) / sets[i].Peak(srv)
	}
	fmt.Printf("\nSNP (geom mean)  %8.4f\n", stats.GeoMean(anps))
	fmt.Printf("unfairness (CV)  %8.4f\n", stats.CoeffVar(anps))
	hist := map[float64]int{}
	for _, w := range alloc {
		hist[w]++
	}
	fmt.Println("\ncap distribution:")
	for _, c := range caps {
		fmt.Printf("  %3.0f W: %4d servers\n", c, hist[c])
	}
}
