// Quickstart: build a 64-server cluster with heterogeneous HPC workloads,
// cap the total power at 10 kW, run DiBA over a ring, and compare against
// the uniform baseline and the centralized optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"powercap/internal/baseline"
	"powercap/internal/diba"
	"powercap/internal/metrics"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

func main() {
	const (
		n      = 64
		budget = 10000.0 // W, ≈156 W per server
	)

	// 1. Characterize workloads: each server runs one benchmark; its
	// throughput-vs-power model is fitted from a (simulated) DVFS sweep.
	rng := rand.New(rand.NewSource(42))
	assign, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0.01, rng)
	if err != nil {
		log.Fatal(err)
	}
	us := assign.UtilitySlice()

	// 2. Run DiBA: every node exchanges one scalar per round with its two
	// ring neighbors; no coordinator anywhere.
	engine, err := diba.New(topology.Ring(n), us, budget, diba.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res := engine.RunToQuiescence(1e-3, 20, 50000)
	fmt.Printf("DiBA converged=%v after %d rounds\n", res.Converged, res.Iterations)

	// 3. Compare.
	opt, err := solver.Optimal(us, budget)
	if err != nil {
		log.Fatal(err)
	}
	uni, err := baseline.Uniform(us, budget)
	if err != nil {
		log.Fatal(err)
	}
	dibaRep, _ := metrics.Evaluate(us, engine.Alloc(), metrics.Arithmetic)
	optRep, _ := metrics.Evaluate(us, opt.Alloc, metrics.Arithmetic)
	uniRep, _ := metrics.Evaluate(us, uni, metrics.Arithmetic)

	fmt.Printf("\n%-12s %8s %8s %10s\n", "method", "SNP", "power", "utility")
	row := func(name string, alloc []float64) {
		util, _ := metrics.TotalUtility(us, alloc)
		rep, _ := metrics.Evaluate(us, alloc, metrics.Arithmetic)
		fmt.Printf("%-12s %8.4f %7.0fW %10.1f\n", name, rep.SNP, metrics.TotalPower(alloc), util)
	}
	row("uniform", uni)
	row("diba", engine.Alloc())
	row("optimal", opt.Alloc)

	fmt.Printf("\nDiBA vs uniform: %+.1f%% SNP; vs optimal: %.1f%% of the optimum\n",
		100*(dibaRep.SNP-uniRep.SNP)/uniRep.SNP, 100*dibaRep.SNP/optRep.SNP)

	// 4. Per-benchmark allocation summary: compute-bound workloads are fed,
	// memory-bound ones shed.
	byBench := map[string][]float64{}
	for i, b := range assign.Benchmarks {
		byBench[b.Name] = append(byBench[b.Name], engine.Alloc()[i])
	}
	fmt.Printf("\n%-6s %6s %6s\n", "bench", "count", "meanW")
	for _, b := range workload.HPC {
		caps := byBench[b.Name]
		if len(caps) == 0 {
			continue
		}
		var sum float64
		for _, c := range caps {
			sum += c
		}
		fmt.Printf("%-6s %6d %6.1f\n", b.Name, len(caps), sum/float64(len(caps)))
	}
}
