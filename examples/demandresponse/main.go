// Demand response: a 200-server cluster participates in a utility
// demand-response program — its power budget is cut and restored on
// one-minute notice. DiBA retracks each new budget without a coordinator
// and, crucially, without ever exceeding it (the safety property the
// breaker needs). This is the Figs. 4.4–4.6 scenario as a library user
// would script it.
package main

import (
	"fmt"
	"log"

	"powercap/internal/cluster"
)

func main() {
	const n = 200
	sim, err := cluster.NewSim(cluster.Config{N: n, Seed: 7}, 185*n)
	if err != nil {
		log.Fatal(err)
	}

	// Budget schedule: normal operation, a demand-response cut, a deeper
	// emergency cut, then full restoration.
	events := []cluster.BudgetEvent{
		{AtSecond: 60, Budget: 168 * n},  // DR event: shed 9 %
		{AtSecond: 120, Budget: 150 * n}, // emergency: shed another 11 %
		{AtSecond: 180, Budget: 185 * n}, // restored
	}
	samples, err := sim.Run(240, events)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s %10s %10s %8s %8s\n", "t(s)", "budget(kW)", "power(kW)", "SNP", "optSNP")
	violations := 0
	for _, s := range samples {
		if s.Power > s.Budget {
			violations++
		}
		if s.Second%15 == 0 {
			fmt.Printf("%6d %10.2f %10.2f %8.4f %8.4f\n",
				s.Second, s.Budget/1000, s.Power/1000, s.SNP, s.OptSNP)
		}
	}
	fmt.Printf("\nbudget violations: %d (the invariant guarantees 0)\n", violations)

	// Step-response detail right after a cut, at per-round resolution.
	if err := sim.SetBudget(160 * n); err != nil {
		log.Fatal(err)
	}
	trace := sim.Trace(50)
	fmt.Println("\nper-round detail of a 185→160 W/server cut:")
	for _, r := range trace {
		if r.Round <= 5 || r.Round%10 == 0 {
			fmt.Printf("  round %3d: power %8.2f kW (budget %.2f kW)\n", r.Round, r.Power/1000, r.Budget/1000)
		}
	}
}
