// Rack PDUs: hierarchical power capping. The facility budget is generous,
// but each rack hangs off a PDU with its own breaker limit — the
// constraint that actually trips first in practice. The hierarchical DiBA
// engine enforces both levels on every round with one extra scalar per
// node, and tracks the exact rack-constrained optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"powercap/internal/diba"
	"powercap/internal/solver"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

func main() {
	const (
		nRacks  = 6
		perRack = 10
		n       = nRacks * perRack
	)
	rng := rand.New(rand.NewSource(9))
	assign, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0.01, rng)
	if err != nil {
		log.Fatal(err)
	}
	us := assign.UtilitySlice()

	// Topology: each rack's servers ring together; rack leaders form the
	// cluster ring (rack estimates never need to leave the rack).
	g := topology.NewGraph(n)
	rackOf := make([]int, n)
	for k := 0; k < nRacks; k++ {
		base := k * perRack
		for j := 0; j < perRack; j++ {
			rackOf[base+j] = k
			if err := g.AddEdge(base+j, base+(j+1)%perRack); err != nil {
				log.Fatal(err)
			}
		}
	}
	for k := 0; k < nRacks; k++ {
		if err := g.AddEdge(k*perRack, ((k+1)%nRacks)*perRack); err != nil {
			log.Fatal(err)
		}
	}

	// One rack has an undersized PDU (legacy wiring): 145 W/server vs
	// 175 W/server elsewhere; the cluster budget itself is roomy.
	clusterBudget := 168.0 * n
	racks := diba.Racks{RackOf: rackOf, RackBudget: make([]float64, nRacks)}
	for k := range racks.RackBudget {
		racks.RackBudget[k] = 175 * perRack
	}
	racks.RackBudget[2] = 145 * perRack

	en, err := diba.NewHier(g, us, clusterBudget, racks, diba.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := solver.OptimalHierarchical(us, clusterBudget,
		solver.Hierarchy{RackOf: rackOf, RackBudget: racks.RackBudget})
	if err != nil {
		log.Fatal(err)
	}
	res := en.RunToTarget(ref.Utility, 0.995, 60000)
	fmt.Printf("converged=%v after %d rounds: %.2f%% of the rack-constrained optimum\n",
		res.Converged, res.Iterations, 100*res.Utility/ref.Utility)

	fmt.Printf("\n%-6s %10s %10s %9s\n", "rack", "PDU (W)", "draw (W)", "margin")
	for k := 0; k < nRacks; k++ {
		draw := en.RackPower(k)
		fmt.Printf("rack %d %10.0f %10.1f %8.1fW\n", k, racks.RackBudget[k], draw, racks.RackBudget[k]-draw)
	}
	fmt.Printf("\ncluster: %.1f W of %.0f W budget\n", en.TotalPower(), clusterBudget)

	// The weak PDU's cost: compare against a cluster where rack 2 is fixed.
	fixed := diba.Racks{RackOf: rackOf, RackBudget: make([]float64, nRacks)}
	for k := range fixed.RackBudget {
		fixed.RackBudget[k] = 175 * perRack
	}
	fixedRef, err := solver.OptimalHierarchical(us, clusterBudget,
		solver.Hierarchy{RackOf: rackOf, RackBudget: fixed.RackBudget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upgrading rack 2's PDU would buy %.1f%% more cluster throughput\n",
		100*(fixedRef.Utility-ref.Utility)/ref.Utility)
}
