module powercap

go 1.22
