package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powercap/internal/ctlplane"
	"powercap/internal/diba"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadPeers(t *testing.T) {
	path := writeTemp(t, "# comment\n0 10.0.0.1:7946\n1 10.0.0.2:7946\n\n2 10.0.0.3:7946\n")
	peers, stride, _, err := readPeers(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 {
		t.Fatalf("got %d peers, want 3", len(peers))
	}
	if peers[1] != "10.0.0.2:7946" {
		t.Fatalf("peer 1 = %q", peers[1])
	}
	if stride != 0 {
		t.Fatalf("stride = %d without a chord directive", stride)
	}
}

func TestReadPeersChordDirective(t *testing.T) {
	path := writeTemp(t, "chord 2\n0 a:1\n1 b:2\n2 c:3\n3 d:4\n4 e:5\n")
	peers, stride, _, err := readPeers(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 5 || stride != 2 {
		t.Fatalf("got %d peers stride %d, want 5 peers stride 2", len(peers), stride)
	}
}

func TestReadPeersBadChord(t *testing.T) {
	path := writeTemp(t, "chord one\n0 a:1\n")
	if _, _, _, err := readPeers(path); err == nil {
		t.Fatal("bad chord directive must error")
	}
}

func TestReadPeersDuplicate(t *testing.T) {
	path := writeTemp(t, "0 a:1\n0 b:2\n")
	if _, _, _, err := readPeers(path); err == nil {
		t.Fatal("duplicate id must error")
	}
}

func TestReadPeersMalformed(t *testing.T) {
	path := writeTemp(t, "zero a:1\n")
	if _, _, _, err := readPeers(path); err == nil {
		t.Fatal("malformed line must error")
	}
}

func TestReadPeersMissingFile(t *testing.T) {
	if _, _, _, err := readPeers("/nonexistent/peers.txt"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestReadPeersGroupDirectives(t *testing.T) {
	path := writeTemp(t, "group 0 0 1 2\ngroup 1 3 4 5\n0 a:1\n1 b:2\n2 c:3\n3 d:4\n4 e:5\n5 f:6\n")
	peers, _, groups, err := readPeers(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 6 || len(groups) != 2 {
		t.Fatalf("got %d peers in %d groups, want 6 in 2", len(peers), len(groups))
	}
	if len(groups[1]) != 3 || groups[1][0] != 3 {
		t.Fatalf("group 1 = %v", groups[1])
	}
}

func TestReadPeersGroupValidation(t *testing.T) {
	for name, content := range map[string]string{
		"sparse gid":    "group 1 0 1\n0 a:1\n1 b:2\n",
		"dup member":    "group 0 0 1\ngroup 1 1 2\n0 a:1\n1 b:2\n2 c:3\n",
		"ungrouped id":  "group 0 0 1\n0 a:1\n1 b:2\n2 c:3\n",
		"no address":    "group 0 0 1 2\n0 a:1\n1 b:2\n",
		"empty group":   "group 0\n0 a:1\n",
		"bad member id": "group 0 zero\n0 a:1\n",
	} {
		if _, _, _, err := readPeers(writeTemp(t, content)); err == nil {
			t.Errorf("%s: want an error", name)
		}
	}
}

func TestChordPartners(t *testing.T) {
	ring := []int{4, 6}
	got := chordPartners(5, 12, 3, ring)
	if len(got) != 2 || got[0] != 2 || got[1] != 8 {
		t.Fatalf("chordPartners(5, 12, 3) = %v, want [2 8]", got)
	}
	if got := chordPartners(0, 12, 0, ring); got != nil {
		t.Fatalf("stride 0 must yield no chords, got %v", got)
	}
	// Antipodal stride: both directions land on the same node.
	if got := chordPartners(1, 4, 2, []int{0, 2}); len(got) != 1 || got[0] != 3 {
		t.Fatalf("chordPartners(1, 4, 2) = %v, want [3]", got)
	}
}

// The control plane's GET /status stays field-compatible with the old
// status endpoint (id/workload/capW/estimate/round), so existing drills
// keep parsing.
func TestLegacyStatusEndpoint(t *testing.T) {
	pub := new(diba.StatePub)
	s := ctlplane.New(ctlplane.Config{Node: 7, Workload: "CG", Pub: pub})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(time.Second)

	// Before the first published round the endpoint reports unavailable.
	resp, err := http.Get("http://" + s.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-publication /status = %d, want 503", resp.StatusCode)
	}

	pub.Publish(&diba.StateSnapshot{Node: 7, Round: 42, CapW: 151.25, EstimateW: -0.75})
	resp, err = http.Get("http://" + s.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		ID       int     `json:"id"`
		Workload string  `json:"workload"`
		CapW     float64 `json:"capW"`
		Estimate float64 `json:"estimate"`
		Round    int     `json:"round"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Workload != "CG" || got.CapW != 151.25 || got.Estimate != -0.75 || got.Round != 42 {
		t.Fatalf("legacy status fields wrong: %+v", got)
	}
}
