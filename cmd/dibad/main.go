// Command dibad is a standalone DiBA agent daemon — the per-server process
// of the dissertation's "working prototype of DiBA on a real experimental
// cluster". Each instance controls one server's power cap and exchanges
// estimates with its ring neighbors over TCP.
//
// A cluster is described by a peers file with one "id host:port" line per
// agent; the ring is implied by id order. Example for a three-node cluster:
//
//	0 10.0.0.1:7946
//	1 10.0.0.2:7946
//	2 10.0.0.3:7946
//
// Run on each machine:
//
//	dibad -id 1 -peers peers.txt -budget 510 -workload CG -rounds 2000
//
// The daemon fits its workload's throughput model from a (simulated) DVFS
// sweep, joins the ring, runs the given number of DiBA rounds and prints
// the resulting power cap. For a single-machine demonstration across
// processes, see examples/tcpcluster which spawns agents on localhost.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"powercap/internal/diba"
	"powercap/internal/workload"
)

func main() {
	id := flag.Int("id", -1, "this agent's node id (line in the peers file)")
	peersPath := flag.String("peers", "", "path to the peers file: one 'id host:port' per line")
	budget := flag.Float64("budget", 0, "cluster-wide power budget in watts")
	bench := flag.String("workload", "EP", "benchmark this server runs (Table 4.1 name)")
	rounds := flag.Int("rounds", 2000, "DiBA rounds to execute (0 = run until the cluster self-detects quiescence)")
	timeout := flag.Duration("connect-timeout", 10*time.Second, "neighbor connect timeout")
	seed := flag.Int64("seed", 1, "seed for the characterization sweep noise")
	statusAddr := flag.String("status", "", "optional HTTP status endpoint, e.g. 127.0.0.1:8080 (GET /status)")
	flag.Parse()

	if *id < 0 || *peersPath == "" || *budget <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	addrs, err := readPeers(*peersPath)
	if err != nil {
		log.Fatalf("dibad: %v", err)
	}
	n := len(addrs)
	if n < 3 {
		log.Fatalf("dibad: a ring needs at least 3 agents, peers file has %d", n)
	}
	self, ok := addrs[*id]
	if !ok {
		log.Fatalf("dibad: id %d not present in peers file", *id)
	}

	b, err := workload.ByName(workload.HPC, *bench)
	if err != nil {
		log.Fatalf("dibad: %v", err)
	}
	srv := workload.DefaultServer
	rng := rand.New(rand.NewSource(*seed + int64(*id)))
	util, err := workload.FitFromSweep(b, srv, 0.01, rng)
	if err != nil {
		log.Fatalf("dibad: characterizing %s: %v", *bench, err)
	}

	tr, err := diba.NewTCPTransport(*id, self)
	if err != nil {
		log.Fatalf("dibad: %v", err)
	}
	defer tr.Close()
	neighbors := []int{(*id + n - 1) % n, (*id + 1) % n}
	log.Printf("dibad: agent %d listening on %s, ring neighbors %v", *id, tr.Addr(), neighbors)
	if err := tr.ConnectNeighbors(neighbors, addrs, *timeout); err != nil {
		log.Fatalf("dibad: %v", err)
	}

	// Every agent derives its initial estimate from the published cluster
	// parameters: budget, size, and the common idle floor.
	totalIdle := srv.IdleWatts * float64(n)
	agent, err := diba.NewAgent(*id, neighbors, util, *budget, n, totalIdle, diba.Config{}, tr)
	if err != nil {
		log.Fatalf("dibad: %v", err)
	}
	var status statusServer
	if *statusAddr != "" {
		status.start(*statusAddr, *id, *bench)
	}
	start := time.Now()
	finalRounds := 0
	if *rounds == 0 {
		// Coordinator-free stopping: every agent runs the same rule and all
		// halt at the identical round (margin n exceeds any ring diameter).
		st, err := agent.RunUntilQuiet(diba.QuietConfig{TolW: 1e-3, Settle: 50, Margin: n, MaxRounds: 200000})
		if err != nil {
			log.Fatalf("dibad: %v", err)
		}
		finalRounds = st.Rounds
		status.update(agent.Power(), agent.Estimate(), st.Rounds)
	} else {
		for r := 0; r < *rounds; r++ {
			if err := agent.StepOnce(); err != nil {
				log.Fatalf("dibad: round %d: %v", r, err)
			}
			status.update(agent.Power(), agent.Estimate(), r+1)
		}
		finalRounds = *rounds
	}
	fmt.Printf("agent %d: workload=%s cap=%.2fW estimate=%.4f rounds=%d elapsed=%v\n",
		*id, *bench, agent.Power(), agent.Estimate(), finalRounds, time.Since(start).Round(time.Millisecond))
}

// statusServer exposes the agent's live state over HTTP for operators.
type statusServer struct {
	enabled bool
	id      int
	bench   string
	// Fixed-point packed values keep the handler lock-free.
	capMilli atomic.Int64
	estMicro atomic.Int64
	round    atomic.Int64
}

func (s *statusServer) start(addr string, id int, bench string) {
	s.enabled = true
	s.id = id
	s.bench = bench
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("dibad: status listen: %v", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]interface{}{
			"id":       s.id,
			"workload": s.bench,
			"capW":     float64(s.capMilli.Load()) / 1000,
			"estimate": float64(s.estMicro.Load()) / 1e6,
			"round":    s.round.Load(),
		})
	})
	log.Printf("dibad: status endpoint at http://%s/status", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("dibad: status server stopped: %v", err)
		}
	}()
}

func (s *statusServer) update(capW, est float64, round int) {
	if !s.enabled {
		return
	}
	s.capMilli.Store(int64(capW * 1000))
	s.estMicro.Store(int64(est * 1e6))
	s.round.Store(int64(round))
}

func readPeers(path string) (map[int]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[int]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var id int
		var addr string
		if _, err := fmt.Sscanf(text, "%d %s", &id, &addr); err != nil {
			return nil, fmt.Errorf("peers file line %d: %v", line, err)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("peers file line %d: duplicate id %d", line, id)
		}
		out[id] = addr
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
