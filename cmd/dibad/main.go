// Command dibad is a standalone DiBA agent daemon — the per-server process
// of the dissertation's "working prototype of DiBA on a real experimental
// cluster". Each instance controls one server's power cap and exchanges
// estimates with its ring neighbors over TCP.
//
// A cluster is described by a peers file with one "id host:port" line per
// agent; the ring is implied by id order. An optional "chord <stride>"
// directive equips the ring with standby chord links (each node also
// connects to id±stride): they carry no estimate traffic in normal
// operation, but if a node dies the survivors activate them to keep the
// graph connected — the text's suggested repair topology. Example for a
// five-node cluster with chords:
//
//	chord 2
//	0 10.0.0.1:7946
//	1 10.0.0.2:7946
//	2 10.0.0.3:7946
//	3 10.0.0.4:7946
//	4 10.0.0.5:7946
//
// Run on each machine:
//
//	dibad -id 1 -peers peers.txt -budget 510 -workload CG -rounds 2000
//
// The daemon fits its workload's throughput model from a (simulated) DVFS
// sweep, joins the ring, runs the given number of DiBA rounds and prints
// the resulting power cap. For a single-machine demonstration across
// processes, see examples/tcpcluster which spawns agents on localhost.
//
// # Fault tolerance
//
// By default a daemon blocks forever if a neighbor goes silent. The
// following flags enable detection and recovery (see internal/diba's
// repair.go for the full fault model):
//
//	-gather-timeout 500ms  declare a neighbor dead after this much silence
//	                       in one round's gather (0 disables detection)
//	-heartbeat 100ms       transport-level liveness beacons; a peer whose
//	                       heartbeats still arrive is slow, not dead (the
//	                       detector grants it 3 intervals of grace)
//	-repair-margin 12      rounds between detection and chord activation;
//	                       must exceed the graph diameter (0 = cluster size)
//	-no-recover            fail fast with an error instead of repairing
//	-straggler             gray-failure mitigation: proceed past a slow (but
//	                       alive) neighbor at an adaptive per-peer deadline,
//	                       substituting its last estimate, and reconcile
//	                       exactly when the true frame lands; death detection
//	                       is unchanged (needs -gather-timeout)
//	-deadline-min 2ms      clamp on the adaptive deadline (0 = timeout/16)
//	-deadline-max 50ms     ceiling on per-round waiting (0 = timeout/2)
//	-max-lag 8             staleness bound in rounds for substituted
//	                       estimates; beyond it the edge is excluded (0 = 8)
//
// The exit log prints a per-peer gray-failure health report next to the
// wire statistics: round-trip mean/p99, silence-based suspicion, the
// degraded verdict, and how many rounds proceeded without the peer.
//
// On a detected death the survivors gossip the dead node's frozen state,
// shrink their budget view by its share (P − p_dead + e_dead), drop the
// dead edges and, if chords are configured, activate them at an agreed
// round. The final report line then shows the shrunk budget and dead set.
//
// # Hierarchical mode
//
// With -levels 2 the daemons form a two-level hierarchy instead of one flat
// ring: the peers file partitions the ids into leaf groups, each group runs
// its own DiBA ring against a budget lease, and the lowest live id of each
// group acts as the group's aggregate agent on the upper ring, migrating
// budget between groups under TTL'd leases (see internal/diba/hieragent.go
// for the failover and reconciliation protocol). Example peers file for two
// levels, three groups of three:
//
//	group 0 0 1 2
//	group 1 3 4 5
//	group 2 6 7 8
//	0 10.0.0.1:7946
//	... one line per id as usual ...
//
// Run every daemon with the same -levels 2 and a -gather-timeout (failover
// rides on the failure detector); -group and -rank optionally pin what the
// operator believes this daemon's placement is and fail fast on drift:
//
//	dibad -id 4 -peers peers.txt -levels 2 -group 1 -rank 1 \
//	      -budget 1530 -gather-timeout 500ms -lease-ttl 12 -until-round 2000
//
// Chords, -rounds 0 quiescence and snapshot/rejoin are flat-ring features
// and are rejected in hierarchical mode. The report line gains the group,
// lease, epoch, aggregate and frozen fields.
//
// # Chaos injection
//
// For fault-drill runs, the daemon can wrap its transport in the seeded
// fault injector (internal/diba's FaultTransport). All injection is
// deterministic per (seed, link, message index):
//
//	-chaos-seed 7            master seed (0 disables injection entirely)
//	-chaos-drop 0.01         probability a sent message is lost forever
//	-chaos-delay 0.2         probability a message is delayed …
//	-chaos-max-delay 5ms     … by up to this much
//	-chaos-dup 0.1           probability a message is delivered twice
//	-chaos-reorder 0.1       probability two messages on a link swap
//	-chaos-crash-after 1000  crash this daemon after that many sends
//	                         (-1 = never); crossing the threshold mid-round
//	                         truncates the broadcast, the hardest case for
//	                         the survivors' budget reconciliation
//	-chaos-partition-start 200ms  sever this daemon's links after that long …
//	-chaos-partition-dur 1s       … for this long; held messages flush at heal
//	-chaos-partition-scope group=1|all
//	                         group=<gid> severs that whole group from the rest
//	                         of the cluster (-levels 2; pass the same spec to
//	                         every daemon — each process only holds its own
//	                         outbound sends); all cuts this daemon's every link
//	-chaos-slow-node 3       degrade node 3: every lane touching it carries the
//	                         gray-failure latency below (each process holds its
//	                         own outbound sends, so pass the same spec to every
//	                         daemon for symmetric slowness)
//	-chaos-slow-delay 5ms    constant extra latency per affected message
//	-chaos-slow-jitter 1ms   uniform extra [0, jitter) on top of the delay
//	-chaos-slow-ramp 10s     scale the delay from 0 to full over this window
//	                         (a gradually degrading component)
//	-chaos-slow-period 2s    flap: slow for -chaos-slow-on of every period …
//	-chaos-slow-on 500ms     … and healthy for the rest (0 = always slow)
//	-chaos-slow-start 1s     activation offset from the fabric's first send
//
// # Control plane
//
// -api host:port serves the operator HTTP API (internal/ctlplane) over the
// agent's per-round published state snapshot: GET /v1/caps, /v1/health,
// /status (legacy shape; -status remains as a deprecated alias for -api)
// and /metrics (Prometheus text), plus POST /v1/budget, /v1/powercap and
// /v1/shed, which queue coalesced latest-wins commands applied at the next
// round boundary. Reads are lock-free and allocation-free at steady state
// and cannot delay a round; see "Control plane" in DESIGN.md and the API
// reference in README.md.
//
// # Shutdown
//
// On SIGINT or SIGTERM the daemon first shuts the control plane down
// gracefully (in-flight requests complete; nothing is dropped
// mid-response), then drains its per-connection send queues (coalesced
// batches flush; nothing queued is lost) and logs the same per-peer wire
// statistics a clean exit logs, then exits 0.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"powercap/internal/ctlplane"
	"powercap/internal/diba"
	"powercap/internal/safety"
	"powercap/internal/sensor"
	"powercap/internal/workload"
)

func main() {
	id := flag.Int("id", -1, "this agent's node id (line in the peers file)")
	peersPath := flag.String("peers", "", "path to the peers file: one 'id host:port' per line")
	budget := flag.Float64("budget", 0, "cluster-wide power budget in watts")
	bench := flag.String("workload", "EP", "benchmark this server runs (Table 4.1 name)")
	rounds := flag.Int("rounds", 2000, "DiBA rounds to execute (0 = run until the cluster self-detects quiescence)")
	timeout := flag.Duration("connect-timeout", 10*time.Second, "neighbor connect timeout")
	seed := flag.Int64("seed", 1, "seed for the characterization sweep noise")
	apiAddr := flag.String("api", "", "control-plane HTTP endpoint, e.g. 127.0.0.1:8080 (GET /v1/caps /v1/health /status /metrics, POST /v1/budget /v1/powercap /v1/shed)")
	statusAddr := flag.String("status", "", "deprecated alias for -api (kept for old drills; serves the same endpoints)")
	chord := flag.Int("chord", 0, "standby chord stride (0 = peers-file 'chord' directive, if any)")
	gatherTimeout := flag.Duration("gather-timeout", 0, "declare a silent neighbor dead after this long (0 = detection off)")
	heartbeat := flag.Duration("heartbeat", 0, "transport heartbeat interval (0 = off)")
	repairMargin := flag.Int("repair-margin", 0, "rounds between death detection and chord activation (0 = cluster size)")
	noRecover := flag.Bool("no-recover", false, "fail with an error on a detected death instead of repairing")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault injection seed (0 = no injection)")
	chaosDrop := flag.Float64("chaos-drop", 0, "probability a sent message is permanently lost")
	chaosDelay := flag.Float64("chaos-delay", 0, "probability a sent message is delayed")
	chaosMaxDelay := flag.Duration("chaos-max-delay", 2*time.Millisecond, "maximum injected delay")
	chaosDup := flag.Float64("chaos-dup", 0, "probability a sent message is duplicated")
	chaosReorder := flag.Float64("chaos-reorder", 0, "probability two messages on a link are swapped")
	chaosCrashAfter := flag.Int("chaos-crash-after", -1, "crash this daemon after that many sends (-1 = never)")
	chaosSlowNode := flag.Int("chaos-slow-node", -1, "degrade this node id: every lane touching it carries the -chaos-slow-* latency (-1 = none)")
	chaosSlowDelay := flag.Duration("chaos-slow-delay", 5*time.Millisecond, "constant extra latency per message on the degraded node's lanes")
	chaosSlowJitter := flag.Duration("chaos-slow-jitter", 0, "uniform extra [0, jitter) per message on top of -chaos-slow-delay")
	chaosSlowRamp := flag.Duration("chaos-slow-ramp", 0, "scale the slow delay linearly from 0 to full over this window")
	chaosSlowPeriod := flag.Duration("chaos-slow-period", 0, "flap period: slow for -chaos-slow-on of every period (0 = always slow)")
	chaosSlowOn := flag.Duration("chaos-slow-on", 0, "active window within each -chaos-slow-period")
	chaosSlowStart := flag.Duration("chaos-slow-start", 0, "slowness activation offset from the fabric's first send")
	straggler := flag.Bool("straggler", false, "straggler-tolerant rounds: mitigate slow-but-alive neighbors at adaptive per-peer deadlines (needs -gather-timeout)")
	deadlineMin := flag.Duration("deadline-min", 0, "adaptive per-peer deadline floor (0 = gather-timeout/16)")
	deadlineMax := flag.Duration("deadline-max", 0, "adaptive per-peer deadline ceiling — the most one round waits on a straggler (0 = gather-timeout/2)")
	maxLag := flag.Int("max-lag", 0, "staleness bound in rounds for substituted estimates; beyond it the straggler's edge is excluded (0 = 8)")
	sensorSeed := flag.Int64("sensor-chaos-seed", 0, "sensor fault injection seed (0 = ideal sensor)")
	sensorStuck := flag.Float64("sensor-chaos-stuck", 0.002, "per-reading probability the sensor latches (with -sensor-chaos-seed)")
	sensorDropout := flag.Float64("sensor-chaos-dropout", 0.01, "per-reading probability the reading is lost (NaN)")
	sensorSpike := flag.Float64("sensor-chaos-spike", 0.01, "per-reading probability of a transient spike")
	sensorDrift := flag.Float64("sensor-chaos-drift", 0.003, "per-reading step scale of the downward calibration drift")
	sensorQuant := flag.Float64("sensor-chaos-quant", 0.25, "reading quantization step in watts")
	watchdog := flag.Bool("watchdog", false, "run a local cap-safety watchdog over the filtered telemetry")
	snapshotPath := flag.String("snapshot", "", "operational snapshot file, written atomically every -snapshot-every rounds")
	snapshotEvery := flag.Int("snapshot-every", 50, "rounds between snapshot writes (with -snapshot)")
	rejoin := flag.Bool("rejoin", false, "resume from -snapshot and rejoin the ring after this daemon was declared dead")
	untilRound := flag.Int("until-round", 0, "run until the round counter reaches this value (overrides -rounds; a rejoiner starts mid-count)")
	roundInterval := flag.Duration("round-interval", 0, "sleep between rounds, pacing the run for drills")
	wire := flag.String("wire", "binary", "wire codec written to peers: binary or json (reading always auto-detects, so mixed clusters interoperate)")
	levels := flag.Int("levels", 1, "hierarchy levels: 1 = flat ring, 2 = leaf groups under aggregate agents (peers file needs 'group' directives)")
	groupFlag := flag.Int("group", -1, "expected group index of this agent; fail fast if the peers file disagrees (-levels 2)")
	rankFlag := flag.Int("rank", -1, "expected failover rank of this agent within its group; fail fast on mismatch (-levels 2)")
	leaseTTL := flag.Int("lease-ttl", 0, "rounds a budget lease stays valid without renewal before the group freezes (0 = protocol default)")
	chaosPartStart := flag.Duration("chaos-partition-start", 0, "partition window start relative to the first send (with -chaos-partition-dur)")
	chaosPartDur := flag.Duration("chaos-partition-dur", 0, "partition window length; this daemon's cut links hold messages and flush at heal (0 = no partition)")
	chaosPartScope := flag.String("chaos-partition-scope", "all", "links the partition cuts: group=<gid> (sever that group from the cluster, -levels 2, same spec on every daemon) or all (every connected peer)")
	flag.Parse()

	if *id < 0 || *peersPath == "" || *budget <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	addrs, fileStride, groups, err := readPeers(*peersPath)
	if err != nil {
		log.Fatalf("dibad: %v", err)
	}
	n := len(addrs)
	self, ok := addrs[*id]
	if !ok {
		log.Fatalf("dibad: id %d not present in peers file", *id)
	}
	hier := *levels >= 2
	if hier {
		if *levels > 2 {
			log.Fatalf("dibad: -levels %d not supported (1 or 2)", *levels)
		}
		if len(groups) == 0 {
			log.Fatalf("dibad: -levels 2 needs 'group' directives in the peers file")
		}
		if *chord != 0 || fileStride != 0 {
			log.Fatalf("dibad: chords are the flat ring's repair topology; not valid with -levels 2")
		}
		if *gatherTimeout <= 0 {
			log.Fatalf("dibad: -levels 2 requires -gather-timeout (aggregate failover rides on the failure detector)")
		}
		if *rejoin || *snapshotPath != "" {
			log.Fatalf("dibad: snapshot/rejoin is not supported with -levels 2")
		}
		if *rounds == 0 && *untilRound == 0 {
			log.Fatalf("dibad: -levels 2 needs -rounds or -until-round (quiescence detection is flat-only)")
		}
	} else if len(groups) > 0 {
		log.Fatalf("dibad: peers file declares groups; run with -levels 2")
	} else if n < 3 {
		log.Fatalf("dibad: a ring needs at least 3 agents, peers file has %d", n)
	}
	stride := *chord
	if stride == 0 {
		stride = fileStride
	}
	if stride != 0 && (stride < 2 || stride > n-2) {
		log.Fatalf("dibad: chord stride %d out of range [2, %d]", stride, n-2)
	}

	b, err := workload.ByName(workload.HPC, *bench)
	if err != nil {
		log.Fatalf("dibad: %v", err)
	}
	srv := workload.DefaultServer
	rng := rand.New(rand.NewSource(*seed + int64(*id)))
	util, err := workload.FitFromSweep(b, srv, 0.01, rng)
	if err != nil {
		log.Fatalf("dibad: characterizing %s: %v", *bench, err)
	}

	codec, err := diba.ParseWireCodec(*wire)
	if err != nil {
		log.Fatalf("dibad: %v", err)
	}
	opts := []diba.TCPOption{diba.WithWireCodec(codec)}
	if *heartbeat > 0 {
		opts = append(opts, diba.WithHeartbeat(*heartbeat))
	}
	tcp, err := diba.NewTCPTransport(*id, self, opts...)
	if err != nil {
		log.Fatalf("dibad: %v", err)
	}
	defer tcp.Close()
	topo := diba.HierTopo{Groups: groups, BudgetW: *budget, IdleW: srv.IdleWatts}
	var neighbors, standby, conns []int
	if hier {
		if err := topo.Validate(); err != nil {
			log.Fatalf("dibad: %v", err)
		}
		// Every member connects to the whole adjacent groups, not just their
		// current aggregates: failover can move the aggregate role to any
		// rank, and the links must already be up when it does.
		neighbors = topo.LeafNeighbors(*id)
		conns = append(append([]int{}, neighbors...), topo.UpperPeers(*id)...)
		log.Printf("dibad: agent %d listening on %s, group %d ring %v, upper-level peers %v",
			*id, tcp.Addr(), topo.GroupOf(*id), neighbors, topo.UpperPeers(*id))
	} else {
		neighbors = []int{(*id + n - 1) % n, (*id + 1) % n}
		standby = chordPartners(*id, n, stride, neighbors)
		conns = append(append([]int{}, neighbors...), standby...)
		log.Printf("dibad: agent %d listening on %s, ring neighbors %v, standby chords %v", *id, tcp.Addr(), neighbors, standby)
	}
	if err := tcp.ConnectNeighbors(conns, addrs, *timeout); err != nil {
		log.Fatalf("dibad: %v", err)
	}

	var partitions []diba.Partition
	if *chaosPartDur > 0 {
		if rest, ok := strings.CutPrefix(*chaosPartScope, "group="); ok {
			// Sever one whole group from the rest of the cluster. Every
			// daemon must run with the same spec: each process's injector only
			// holds its own outbound sends, so the outage is bidirectional
			// only when both sides of every cut link carry the partition.
			var gid int
			if _, err := fmt.Sscanf(rest, "%d", &gid); err != nil || !hier || gid < 0 || gid >= len(groups) {
				log.Fatalf("dibad: bad -chaos-partition-scope %q (needs -levels 2 and a valid group id)", *chaosPartScope)
			}
			var outside []int
			for other := range addrs {
				if topo.GroupOf(other) != gid {
					outside = append(outside, other)
				}
			}
			partitions = diba.SeverGroups(topo.Groups[gid], outside, *chaosPartStart, *chaosPartDur)
		} else if *chaosPartScope == "all" {
			partitions = diba.IsolateNode(*id, conns, *chaosPartStart, *chaosPartDur)
		} else {
			log.Fatalf("dibad: unknown -chaos-partition-scope %q", *chaosPartScope)
		}
		if *chaosSeed == 0 {
			log.Fatalf("dibad: partition windows need -chaos-seed to enable injection")
		}
	}
	if *chaosSlowNode >= 0 && *chaosSeed == 0 {
		log.Fatalf("dibad: -chaos-slow-node needs -chaos-seed to enable injection")
	}
	var tr diba.Transport = tcp
	if *chaosSeed != 0 {
		plan := &diba.FaultPlan{
			Seed:        *chaosSeed,
			DropProb:    *chaosDrop,
			DelayProb:   *chaosDelay,
			MaxDelay:    *chaosMaxDelay,
			DupProb:     *chaosDup,
			ReorderProb: *chaosReorder,
			Partitions:  partitions,
		}
		if *chaosCrashAfter >= 0 {
			plan.CrashAfterSends = map[int]int{*id: *chaosCrashAfter}
		}
		if *chaosSlowNode >= 0 {
			plan.SlowNodes = map[int]diba.SlowSpec{*chaosSlowNode: {
				Delay:    *chaosSlowDelay,
				Jitter:   *chaosSlowJitter,
				RampOver: *chaosSlowRamp,
				Period:   *chaosSlowPeriod,
				On:       *chaosSlowOn,
				Start:    *chaosSlowStart,
			}}
		}
		log.Printf("dibad: agent %d chaos injection on: %v", *id, plan)
		tr = diba.NewFaultTransport(tcp, *id, plan)
	}

	// Every agent derives its initial estimate from the published cluster
	// parameters: budget, size, and the common idle floor.
	var agent *diba.Agent
	var hagent *diba.HierAgent
	if hier {
		hagent, err = diba.NewHierAgent(topo, diba.HierPolicy{LeaseTTL: *leaseTTL}, *id, util, diba.Config{}, tr)
		if err != nil {
			log.Fatalf("dibad: %v", err)
		}
		agent = hagent.Agent()
		if *groupFlag >= 0 && hagent.Group() != *groupFlag {
			log.Fatalf("dibad: peers file places id %d in group %d, -group says %d", *id, hagent.Group(), *groupFlag)
		}
		if *rankFlag >= 0 && hagent.Rank() != *rankFlag {
			log.Fatalf("dibad: id %d has failover rank %d in its group, -rank says %d", *id, hagent.Rank(), *rankFlag)
		}
		log.Printf("dibad: agent %d group %d rank %d lease %d mw aggregate=%v",
			*id, hagent.Group(), hagent.Rank(), hagent.Lease(), hagent.IsAggregate())
	} else {
		totalIdle := srv.IdleWatts * float64(n)
		agent, err = diba.NewAgent(*id, neighbors, util, *budget, n, totalIdle, diba.Config{}, tr)
		if err != nil {
			log.Fatalf("dibad: %v", err)
		}
		if len(standby) > 0 {
			agent.SetStandby(standby)
		}
	}
	if *straggler && *gatherTimeout <= 0 {
		log.Fatalf("dibad: -straggler requires -gather-timeout (the adaptive deadlines derive from it)")
	}
	if *gatherTimeout > 0 {
		fp := diba.FaultPolicy{
			GatherTimeout:     *gatherTimeout,
			RepairMargin:      *repairMargin,
			Recover:           !*noRecover,
			StragglerTolerant: *straggler,
			DeadlineMin:       *deadlineMin,
			DeadlineMax:       *deadlineMax,
			MaxLag:            *maxLag,
			OnEvent: func(ev diba.FaultEvent) {
				log.Printf("dibad: agent %d round %d %s node %d: %s", *id, ev.Round, ev.Kind, ev.Node, ev.Info)
			},
		}
		if *heartbeat > 0 {
			fp.HeartbeatGrace = 3 * *heartbeat
		}
		agent.SetFaultPolicy(fp)
	}

	// Telemetry hardening: the agent reads its own power through a filtered
	// (and optionally fault-injected) sensor pipeline; while the reading is
	// invalid it freezes its applied cap and beacons degraded health.
	var pipe *sensor.Pipeline
	if *sensorSeed != 0 || *watchdog {
		pipe = &sensor.Pipeline{Filter: sensor.NewFilter(0.85*srv.IdleWatts, 1.05*srv.MaxWatts)}
		if *sensorSeed != 0 {
			plan := sensor.Plan{
				Seed:        *sensorSeed,
				StuckProb:   *sensorStuck,
				DropoutProb: *sensorDropout,
				SpikeProb:   *sensorSpike,
				DriftRel:    *sensorDrift,
				QuantStep:   *sensorQuant,
			}
			log.Printf("dibad: agent %d sensor chaos on: %v", *id, plan)
			pipe.Meter = sensor.NewMeter(plan, *id)
		}
		agent.SetTelemetryGuard(diba.TelemetryGuard{
			Measure: func(expected float64) (float64, bool) {
				// The server sits at the cap the agent applies; the meter
				// corrupts that reading per its fault plan.
				return pipe.Measure(expected, expected)
			},
			OnEvent: func(ev diba.HealthEvent) {
				state := "recovered"
				if ev.Degraded {
					state = "degraded"
				}
				log.Printf("dibad: agent %d round %d telemetry %s, applied cap %.2f W", *id, ev.Round, state, ev.AppliedW)
			},
		})
	}
	var wd *safety.Watchdog
	if *watchdog {
		// A single daemon cannot see ΣP, so its watchdog checks the local
		// invariant: a *trusted* filtered reading must track the consensus
		// cap. The watts-scale tolerance absorbs the filter's EWMA lag while
		// the cap converges; a stuck or drifted sensor parks the reading away
		// from the moving cap and trips it.
		wd = safety.New(safety.Config{ToleranceW: 5})
	}

	if *rejoin {
		if *snapshotPath == "" {
			log.Fatalf("dibad: -rejoin requires -snapshot")
		}
		if *gatherTimeout <= 0 {
			log.Fatalf("dibad: -rejoin requires -gather-timeout (the handshake runs on the failure detector)")
		}
		f, err := os.Open(*snapshotPath)
		if err != nil {
			log.Fatalf("dibad: %v", err)
		}
		err = agent.ReadSnapshot(f)
		f.Close()
		if err != nil {
			log.Fatalf("dibad: %v", err)
		}
		log.Printf("dibad: agent %d resumed from %s at round %d; rejoining the ring", *id, *snapshotPath, agent.Round())
		if err := agent.Rejoin(60 * time.Second); err != nil {
			log.Fatalf("dibad: %v", err)
		}
		log.Printf("dibad: agent %d rejoined, resuming at round %d", *id, agent.Round())
	}

	// Control plane: the agent publishes an immutable snapshot per round
	// (internal/diba/publish.go); the HTTP server serves only those
	// snapshots, so no request can ever block or perturb a round. The
	// decorator runs on the agent goroutine at publish time and attaches
	// what the consensus layer cannot see: transport counters and the
	// watchdog's status.
	apiListen := *apiAddr
	if apiListen == "" {
		apiListen = *statusAddr
	}
	var api *ctlplane.Server
	if apiListen != "" {
		pub := new(diba.StatePub)
		pub.SetDecorator(func(s *diba.StateSnapshot) {
			s.Wire = tcp.WireTotals()
			stats := tcp.WireStats()
			peers := make([]int, 0, len(stats))
			for p := range stats {
				peers = append(peers, p)
			}
			sort.Ints(peers)
			pws := make([]diba.PeerWire, 0, len(peers))
			for _, p := range peers {
				pws = append(pws, diba.PeerWire{Peer: p, Stats: stats[p]})
			}
			s.WirePeers = pws
			if wd != nil {
				st := wd.Stats()
				s.Watchdog = diba.WatchdogView{
					Enabled: true, Periods: st.Periods, Violations: st.Violations,
					Sheds: st.Sheds, Releases: st.Releases, MinDerate: st.MinDerate,
				}
			}
		})
		if hagent != nil {
			hagent.PublishState(pub)
		} else {
			agent.PublishState(pub)
		}
		api = ctlplane.New(ctlplane.Config{
			Node: *id, Workload: *bench, Pub: pub, BudgetW: *budget, Hier: hier,
		})
		if err := api.Start(apiListen); err != nil {
			log.Fatalf("dibad: api listen: %v", err)
		}
		log.Printf("dibad: agent %d control plane at http://%s/ (GET /v1/caps /v1/health /status /metrics)", *id, api.Addr())
	}

	// Queued control-plane writes land here, on the agent goroutine at a
	// round boundary. A budget set is applied as a delta against this
	// node's current view (SetBudgetDelta's contract: the operator posts
	// the same budget to every daemon, and each shifts its estimate by
	// delta/n).
	applyCmd := func(c ctlplane.Command) error {
		switch c.Kind {
		case ctlplane.CmdSetBudget:
			delta := c.BudgetW - agent.Budget()
			agent.SetBudgetDelta(delta, n)
			log.Printf("dibad: agent %d round %d budget set to %.2f W (delta %+.2f W)", *id, agent.Round(), c.BudgetW, delta)
		case ctlplane.CmdShed:
			delta := -c.Frac * agent.Budget()
			agent.SetBudgetDelta(delta, n)
			log.Printf("dibad: agent %d round %d emergency shed %.0f%%: budget now %.2f W", *id, agent.Round(), c.Frac*100, agent.Budget())
		default:
			return fmt.Errorf("unknown command kind %v", c.Kind)
		}
		return nil
	}

	// Hierarchical role and lease transitions are logged as they happen so
	// fault drills can assert failover and freeze/thaw from the outside.
	lastFrozen, lastAgg := false, hagent != nil && hagent.IsAggregate()
	hierRound := func() {
		if hagent == nil {
			return
		}
		if f := hagent.Frozen(); f != lastFrozen {
			lastFrozen = f
			if f {
				log.Printf("dibad: agent %d round %d lease expired; froze at %.2f W (lease %d mw minus margin)",
					*id, agent.Round(), agent.Budget(), hagent.Lease())
			} else {
				log.Printf("dibad: agent %d round %d lease view restored; thawed at %.2f W", *id, agent.Round(), agent.Budget())
			}
		}
		if a := hagent.IsAggregate(); a != lastAgg {
			lastAgg = a
			if a {
				log.Printf("dibad: agent %d round %d promoted to aggregate of group %d (epoch %d)",
					*id, agent.Round(), hagent.Group(), hagent.Epoch())
			} else {
				log.Printf("dibad: agent %d round %d demoted from aggregate of group %d (epoch %d)",
					*id, agent.Round(), hagent.Group(), hagent.Epoch())
			}
		}
	}

	// perRound runs the operational side channels after each BSP round:
	// queued control-plane writes, snapshotting, the local watchdog, and
	// drill pacing.
	perRound := func() {
		hierRound()
		if api != nil {
			api.Drain(applyCmd)
		}
		if *snapshotPath != "" && *snapshotEvery > 0 && agent.Round()%*snapshotEvery == 0 {
			if err := writeSnapshot(agent, *snapshotPath); err != nil {
				log.Printf("dibad: snapshot: %v", err)
			}
		}
		if wd != nil && pipe != nil {
			// A distrusted reading holds last-good — stale data proves
			// nothing, and the TelemetryGuard has already frozen the applied
			// cap for that case.
			if last := pipe.Last(); last.Trusted {
				if _, shed := wd.Observe(last.Value, agent.Power()); shed {
					log.Printf("dibad: agent %d round %d watchdog: filtered power %.2f W over consensus cap %.2f W; emergency shed",
						*id, agent.Round(), last.Value, agent.Power())
				}
			}
		}
		if *roundInterval > 0 {
			time.Sleep(*roundInterval)
		}
	}

	// A signal shutdown must lose nothing that a clean exit would not: drain
	// the per-connection send queues (coalesced batches flush on Close) and
	// log the same per-peer wire report, then exit 0. The step loop sees the
	// closed transport as an error; the draining flag turns that into a wait
	// for the handler's exit instead of a spurious failure.
	var draining atomic.Bool
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		draining.Store(true)
		log.Printf("dibad: agent %d caught %v; draining send queues", *id, sig)
		// In-flight control-plane requests finish before the consensus
		// transport goes down: the listener closes first, accepted requests
		// get a deadline to complete, and none is dropped mid-response.
		if api != nil {
			if err := api.Shutdown(2 * time.Second); err != nil {
				log.Printf("dibad: agent %d api shutdown: %v", *id, err)
			}
			log.Printf("dibad: agent %d api drained", *id)
		}
		_ = tcp.Close()
		logWireReport(tcp, codec, *id)
		logHealthReport(agent, tcp, *id)
		log.Printf("dibad: agent %d drained, exiting", *id)
		os.Exit(0)
	}()
	stepFail := func(round int, err error) {
		// A cluster-wide SIGTERM races: a peer's drain-close can surface in
		// the step loop before this process's own handler has run. Give the
		// handler a beat before declaring the error fatal.
		for i := 0; i < 10; i++ {
			if draining.Load() {
				select {} // the signal handler finishes the drain and exits
			}
			time.Sleep(50 * time.Millisecond)
		}
		log.Fatalf("dibad: round %d: %v", round, err)
	}

	step := agent.StepOnce
	if hagent != nil {
		step = hagent.Step
	}
	start := time.Now()
	var final diba.AgentState
	if *untilRound > 0 {
		for agent.Round() < *untilRound {
			if err := step(); err != nil {
				stepFail(agent.Round(), err)
			}
			perRound()
		}
		final = diba.AgentState{Power: agent.Power(), E: agent.Estimate(), Rounds: agent.Round(), Budget: agent.Budget(), Dead: agent.DeadNodes()}
	} else if *rounds == 0 {
		// Coordinator-free stopping: every agent runs the same rule and all
		// halt at the identical round (margin n exceeds any ring diameter).
		st, err := agent.RunUntilQuiet(diba.QuietConfig{TolW: 1e-3, Settle: 50, Margin: n, MaxRounds: 200000})
		if err != nil {
			stepFail(agent.Round(), err)
		}
		final = st
	} else {
		for r := 0; r < *rounds; r++ {
			if err := step(); err != nil {
				stepFail(r, err)
			}
			perRound()
		}
		final = diba.AgentState{Power: agent.Power(), E: agent.Estimate(), Rounds: *rounds, Budget: agent.Budget(), Dead: agent.DeadNodes()}
	}
	if *snapshotPath != "" && !*rejoin {
		if err := writeSnapshot(agent, *snapshotPath); err != nil {
			log.Printf("dibad: final snapshot: %v", err)
		}
	}
	if wd != nil {
		log.Printf("dibad: agent %d watchdog: %+v", *id, wd.Stats())
	}
	if api != nil {
		if err := api.Shutdown(2 * time.Second); err != nil {
			log.Printf("dibad: agent %d api shutdown: %v", *id, err)
		}
	}
	logWireReport(tcp, codec, *id)
	logHealthReport(agent, tcp, *id)
	extra := ""
	if hagent != nil {
		extra = fmt.Sprintf(" group=%d lease=%dmw epoch=%d agg=%v frozen=%v",
			hagent.Group(), hagent.Lease(), hagent.Epoch(), hagent.IsAggregate(), hagent.Frozen())
	}
	fmt.Printf("agent %d: workload=%s cap=%.2fW estimate=%.4f rounds=%d budget=%.2fW dead=%v%s elapsed=%v\n",
		*id, *bench, final.Power, final.E, final.Rounds, final.Budget, final.Dead, extra, time.Since(start).Round(time.Millisecond))
}

// logWireReport logs the wire-level traffic counters, per peer and in
// total — the one report both a clean exit and a signal-drained shutdown
// must produce identically.
func logWireReport(tcp *diba.TCPTransport, codec diba.WireCodec, id int) {
	stats := tcp.WireStats()
	peers := make([]int, 0, len(stats))
	for p := range stats {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	for _, p := range peers {
		ws := stats[p]
		log.Printf("dibad: agent %d wire[%s] peer %d: sent %d msgs / %d B in %d flushes, recv %d msgs / %d B",
			id, codec, p, ws.MsgsSent, ws.BytesSent, ws.Flushes, ws.MsgsRecv, ws.BytesRecv)
	}
	wt := tcp.WireTotals()
	log.Printf("dibad: agent %d wire[%s]: sent %d msgs / %d B in %d flushes, recv %d msgs / %d B",
		id, codec, wt.MsgsSent, wt.BytesSent, wt.Flushes, wt.MsgsRecv, wt.BytesRecv)
}

// logHealthReport logs the per-peer gray-failure verdicts next to the wire
// report: the agent's gather-level round-trip statistics, suspicion and
// mitigation counters (only present when a fault policy is installed), and
// the transport's own ping-echo estimators (only present with -heartbeat).
func logHealthReport(a *diba.Agent, tcp *diba.TCPTransport, id int) {
	for _, ph := range a.PeerHealth() {
		log.Printf("dibad: agent %d health peer %d: gather rtt mean %v p99 %v (%d samples) suspicion %.2f degraded=%v stale-rounds=%d outstanding=%d",
			id, ph.Peer, ph.RTT.Mean.Round(time.Microsecond), ph.RTT.P99.Round(time.Microsecond),
			ph.RTT.Samples, ph.RTT.Suspicion, ph.RTT.Degraded, ph.StaleRounds, ph.Outstanding)
	}
	stats := tcp.RTTStats()
	peers := make([]int, 0, len(stats))
	for p := range stats {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	for _, p := range peers {
		st := stats[p]
		if st.Samples == 0 {
			continue
		}
		log.Printf("dibad: agent %d health peer %d: wire rtt mean %v p99 %v (%d echoes) suspicion %.2f degraded=%v",
			id, p, st.Mean.Round(time.Microsecond), st.P99.Round(time.Microsecond),
			st.Samples, st.Suspicion, st.Degraded)
	}
}

// writeSnapshot persists the agent's state atomically: write to a temp file
// in the same directory, fsync, then rename over the target. A crash mid-write
// leaves the previous snapshot intact, which is what -rejoin restores from.
func writeSnapshot(a *diba.Agent, path string) error {
	dir := "."
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		dir = path[:i]
	}
	tmp, err := os.CreateTemp(dir, ".dibad-snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := a.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// chordPartners returns the standby chord neighbors id±stride (mod n),
// excluding self and anything already a ring neighbor.
func chordPartners(id, n, stride int, ring []int) []int {
	if stride == 0 {
		return nil
	}
	inRing := func(x int) bool {
		for _, r := range ring {
			if r == x {
				return true
			}
		}
		return false
	}
	set := map[int]bool{}
	for _, c := range []int{(id + stride) % n, (id - stride + n) % n} {
		if c != id && !inRing(c) {
			set[c] = true
		}
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// readPeers parses a peers file: one "id host:port" per line, plus an
// optional "chord <stride>" directive selecting the standby chord topology
// and optional "group <gid> <id> <id>..." directives partitioning the ids
// into the leaf groups of the two-level hierarchy (-levels 2). Group ids
// must be dense from 0; every agent id must belong to exactly one group
// when any group directive is present.
func readPeers(path string) (map[int]string, int, [][]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, nil, err
	}
	defer f.Close()
	out := make(map[int]string)
	stride := 0
	groupOf := make(map[int]int)
	var groups [][]int
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(text, "chord "); ok {
			if _, err := fmt.Sscanf(rest, "%d", &stride); err != nil || stride < 2 {
				return nil, 0, nil, fmt.Errorf("peers file line %d: bad chord directive %q", line, text)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(text, "group "); ok {
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				return nil, 0, nil, fmt.Errorf("peers file line %d: group directive needs a group id and at least one member", line)
			}
			var gid int
			if _, err := fmt.Sscanf(fields[0], "%d", &gid); err != nil || gid != len(groups) {
				return nil, 0, nil, fmt.Errorf("peers file line %d: group ids must be dense from 0 in order, got %q", line, fields[0])
			}
			var members []int
			for _, fd := range fields[1:] {
				var m int
				if _, err := fmt.Sscanf(fd, "%d", &m); err != nil {
					return nil, 0, nil, fmt.Errorf("peers file line %d: bad member id %q", line, fd)
				}
				if g, dup := groupOf[m]; dup {
					return nil, 0, nil, fmt.Errorf("peers file line %d: id %d already in group %d", line, m, g)
				}
				groupOf[m] = gid
				members = append(members, m)
			}
			groups = append(groups, members)
			continue
		}
		var id int
		var addr string
		if _, err := fmt.Sscanf(text, "%d %s", &id, &addr); err != nil {
			return nil, 0, nil, fmt.Errorf("peers file line %d: %v", line, err)
		}
		if _, dup := out[id]; dup {
			return nil, 0, nil, fmt.Errorf("peers file line %d: duplicate id %d", line, id)
		}
		out[id] = addr
	}
	if err := sc.Err(); err != nil {
		return nil, 0, nil, err
	}
	if len(groups) > 0 {
		for id := range out {
			if _, ok := groupOf[id]; !ok {
				return nil, 0, nil, fmt.Errorf("peers file: id %d belongs to no group", id)
			}
		}
		for id := range groupOf {
			if _, ok := out[id]; !ok {
				return nil, 0, nil, fmt.Errorf("peers file: group member %d has no address line", id)
			}
		}
	}
	return out, stride, groups, nil
}
