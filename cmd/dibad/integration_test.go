package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestDaemonsFormRingAndConverge builds the dibad binary and launches four
// real OS processes that discover each other over localhost TCP, run DiBA,
// and print their settled caps — the closest this repository gets to the
// dissertation's 12-machine prototype without the machines.
func TestDaemonsFormRingAndConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := filepath.Join(t.TempDir(), "dibad")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dibad: %v\n%s", err, out)
	}

	const n = 4
	// Reserve n ports by listening and closing; the daemons re-bind them.
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	var peers strings.Builder
	for i, a := range addrs {
		fmt.Fprintf(&peers, "%d %s\n", i, a)
	}
	peersPath := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(peersPath, []byte(peers.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	benchs := []string{"EP", "RA", "CG", "HPL"}
	budget := 170.0 * n
	outputs := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(bin,
				"-id", strconv.Itoa(i),
				"-peers", peersPath,
				"-budget", fmt.Sprintf("%f", budget),
				"-workload", benchs[i],
				"-rounds", "0", // self-terminating mode
			)
			out, err := cmd.CombinedOutput()
			outputs[i] = string(out)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("daemon %d failed: %v\n%s", i, err, outputs[i])
		}
	}

	// Parse the printed caps and check the cluster budget plus the
	// qualitative split: the compute-bound agents must out-draw the
	// memory-bound ones.
	capRe := regexp.MustCompile(`cap=([0-9.]+)W`)
	caps := make([]float64, n)
	var total float64
	for i, out := range outputs {
		m := capRe.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("daemon %d output unparseable:\n%s", i, out)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		caps[i] = v
		total += v
	}
	if total > budget {
		t.Fatalf("daemons exceeded the budget: Σ=%v > %v", total, budget)
	}
	if caps[0] <= caps[1] { // EP vs RA
		t.Fatalf("compute-bound EP (%v W) must out-draw memory-bound RA (%v W)", caps[0], caps[1])
	}
	if caps[3] <= caps[2] { // HPL vs CG
		t.Fatalf("compute-bound HPL (%v W) must out-draw memory-bound CG (%v W)", caps[3], caps[2])
	}
	// All daemons must have self-terminated at the identical round.
	roundRe := regexp.MustCompile(`rounds=([0-9]+)`)
	var stopRound string
	for i, out := range outputs {
		m := roundRe.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("daemon %d output missing round count:\n%s", i, out)
		}
		if stopRound == "" {
			stopRound = m[1]
		} else if m[1] != stopRound {
			t.Fatalf("daemon %d stopped at round %s, others at %s", i, m[1], stopRound)
		}
	}
}
