package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildDibad compiles the daemon once per test into a scratch dir.
func buildDibad(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dibad")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building dibad: %v\n%s", err, out)
	}
	return bin
}

// TestClusterSurvivesKilledDaemon is the daemon-level fault drill: five real
// dibad processes form a ring with stride-2 chords, one of them is armed
// with a deterministic crash point that dies mid-broadcast, and the
// survivors must detect the death, repair over the chords, agree on the
// shrunk budget, and terminate together via the distributed quiescence rule.
// The drill runs under both wire codecs so the fault path stays covered on
// each.
func TestClusterSurvivesKilledDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a 5-process TCP cluster")
	}
	bin := buildDibad(t)
	for _, wire := range []string{"binary", "json"} {
		t.Run(wire, func(t *testing.T) {
			testClusterSurvivesKilledDaemon(t, bin, wire)
		})
	}
}

func testClusterSurvivesKilledDaemon(t *testing.T, bin, wire string) {
	const n, victim = 5, 2
	addrs := make([]string, n)
	var peers strings.Builder
	peers.WriteString("chord 2\n")
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
		fmt.Fprintf(&peers, "%d %s\n", i, addrs[i])
	}
	peersPath := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(peersPath, []byte(peers.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	benches := []string{"EP", "CG", "FT", "MG", "LU"}
	outs := make([]string, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		args := []string{
			"-id", fmt.Sprint(i), "-peers", peersPath, "-budget", "850",
			"-workload", benches[i], "-connect-timeout", "20s",
			"-gather-timeout", "500ms", "-heartbeat", "50ms",
			"-wire", wire,
		}
		if i == victim {
			// An odd send budget dies between the two neighbor sends of one
			// broadcast — the asymmetric case the reconciliation must handle.
			args = append(args, "-rounds", "100000", "-chaos-seed", "5", "-chaos-crash-after", "101")
		} else {
			args = append(args, "-rounds", "0") // run until cluster-quiet
		}
		go func(i int, args []string) {
			out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
			outs[i], errs[i] = string(out), err
			done <- i
		}(i, args)
	}
	for i := 0; i < n; i++ {
		<-done
	}

	if errs[victim] == nil {
		t.Errorf("victim exited cleanly; want a crash\n%s", outs[victim])
	}
	report := regexp.MustCompile(`agent \d+: workload=\S+ cap=\S+ estimate=\S+ rounds=(\d+) budget=(\S+)W dead=\[([^\]]*)\]`)
	var rounds, budget string
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("survivor %d failed: %v\n%s", i, errs[i], outs[i])
		}
		m := report.FindStringSubmatch(outs[i])
		if m == nil {
			t.Fatalf("survivor %d printed no report line:\n%s", i, outs[i])
		}
		if m[3] != fmt.Sprint(victim) {
			t.Errorf("survivor %d dead set [%s], want [%d]", i, m[3], victim)
		}
		if rounds == "" {
			rounds, budget = m[1], m[2]
			continue
		}
		// The quiescence rule and the epidemic must leave every survivor
		// with the identical stop round and budget view.
		if m[1] != rounds {
			t.Errorf("survivor %d stopped at round %s, others at %s", i, m[1], rounds)
		}
		if m[2] != budget {
			t.Errorf("survivor %d budget view %sW, others %sW", i, m[2], budget)
		}
	}
	if b, err := strconv.ParseFloat(budget, 64); err != nil || b >= 850 {
		t.Errorf("budget view %sW not shrunk below the configured 850W (parse err %v)", budget, err)
	}
}

// TestKilledDaemonRestartsAndRejoins is the full operational loop at the
// process level: a five-daemon ring loses one member mid-broadcast, the
// survivors repair over the chords and shrink their budget view — and then
// the dead daemon comes back, resumes from its periodic snapshot, rejoins
// the repaired ring, and the whole cluster converges to the original budget.
// Every daemon (including the reborn one) must report the common horizon
// round, the full 850 W budget, and an empty dead set.
func TestKilledDaemonRestartsAndRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a 5-process TCP cluster plus a restart")
	}
	bin := buildDibad(t)

	const n, victim = 5, 2
	const horizon = 2500
	addrs := make([]string, n)
	var peers strings.Builder
	peers.WriteString("chord 2\n")
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
		fmt.Fprintf(&peers, "%d %s\n", i, addrs[i])
	}
	peersPath := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(peersPath, []byte(peers.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "victim.snapshot")

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()
	benches := []string{"EP", "CG", "FT", "MG", "LU"}
	common := []string{
		"-peers", peersPath, "-budget", "850", "-connect-timeout", "20s",
		"-gather-timeout", "500ms", "-heartbeat", "50ms",
		"-until-round", fmt.Sprint(horizon), "-round-interval", "2ms",
		"-wire", "binary",
	}

	outs := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		args := append([]string{"-id", fmt.Sprint(i), "-workload", benches[i]}, common...)
		wg.Add(1)
		go func(i int, args []string) {
			defer wg.Done()
			out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
			outs[i], errs[i] = string(out), err
		}(i, args)
	}

	// Incarnation one: snapshots every 10 rounds, dies mid-broadcast around
	// round 50 (101 sends at two per round).
	vArgs := append([]string{"-id", fmt.Sprint(victim), "-workload", benches[victim]}, common...)
	vArgs = append(vArgs, "-chaos-seed", "5", "-chaos-crash-after", "101",
		"-snapshot", snapPath, "-snapshot-every", "10")
	out, err := exec.CommandContext(ctx, bin, vArgs...).CombinedOutput()
	if err == nil {
		t.Fatalf("victim exited cleanly; want a crash\n%s", out)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("victim crashed without leaving a snapshot: %v\n%s", err, out)
	}

	// Give the survivors time to declare the death and repair before the
	// ghost returns — a too-early restart looks like a slow peer, not a
	// dead one, and only delays the declaration.
	time.Sleep(1500 * time.Millisecond)

	// Incarnation two: resume from the snapshot and rejoin the repaired
	// ring. No chaos this time — the crash point is spent.
	rArgs := append([]string{"-id", fmt.Sprint(victim), "-workload", benches[victim]}, common...)
	rArgs = append(rArgs, "-rejoin", "-snapshot", snapPath)
	rout, rerr := exec.CommandContext(ctx, bin, rArgs...).CombinedOutput()
	outs[victim], errs[victim] = string(rout), rerr
	wg.Wait()

	report := regexp.MustCompile(`agent \d+: workload=\S+ cap=\S+ estimate=\S+ rounds=(\d+) budget=(\S+)W dead=\[([^\]]*)\]`)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("daemon %d failed: %v\n%s", i, errs[i], outs[i])
		}
		m := report.FindStringSubmatch(outs[i])
		if m == nil {
			t.Fatalf("daemon %d printed no report line:\n%s", i, outs[i])
		}
		if m[1] != fmt.Sprint(horizon) {
			t.Errorf("daemon %d stopped at round %s, want %d", i, m[1], horizon)
		}
		// After the rejoin completes, every budget view must return to
		// exactly the configured 850 W and every dead set must be empty.
		if m[2] != "850.00" {
			t.Errorf("daemon %d budget view %sW, want 850.00W", i, m[2])
		}
		if m[3] != "" {
			t.Errorf("daemon %d dead set [%s], want []", i, m[3])
		}
	}
}
