package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestClusterSurvivesKilledDaemon is the daemon-level fault drill: five real
// dibad processes form a ring with stride-2 chords, one of them is armed
// with a deterministic crash point that dies mid-broadcast, and the
// survivors must detect the death, repair over the chords, agree on the
// shrunk budget, and terminate together via the distributed quiescence rule.
func TestClusterSurvivesKilledDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a 5-process TCP cluster")
	}
	bin := filepath.Join(t.TempDir(), "dibad")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building dibad: %v\n%s", err, out)
	}

	const n, victim = 5, 2
	addrs := make([]string, n)
	var peers strings.Builder
	peers.WriteString("chord 2\n")
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
		fmt.Fprintf(&peers, "%d %s\n", i, addrs[i])
	}
	peersPath := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(peersPath, []byte(peers.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	benches := []string{"EP", "CG", "FT", "MG", "LU"}
	outs := make([]string, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		args := []string{
			"-id", fmt.Sprint(i), "-peers", peersPath, "-budget", "850",
			"-workload", benches[i], "-connect-timeout", "20s",
			"-gather-timeout", "500ms", "-heartbeat", "50ms",
		}
		if i == victim {
			// An odd send budget dies between the two neighbor sends of one
			// broadcast — the asymmetric case the reconciliation must handle.
			args = append(args, "-rounds", "100000", "-chaos-seed", "5", "-chaos-crash-after", "101")
		} else {
			args = append(args, "-rounds", "0") // run until cluster-quiet
		}
		go func(i int, args []string) {
			out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
			outs[i], errs[i] = string(out), err
			done <- i
		}(i, args)
	}
	for i := 0; i < n; i++ {
		<-done
	}

	if errs[victim] == nil {
		t.Errorf("victim exited cleanly; want a crash\n%s", outs[victim])
	}
	report := regexp.MustCompile(`agent \d+: workload=\S+ cap=\S+ estimate=\S+ rounds=(\d+) budget=(\S+)W dead=\[([^\]]*)\]`)
	var rounds, budget string
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("survivor %d failed: %v\n%s", i, errs[i], outs[i])
		}
		m := report.FindStringSubmatch(outs[i])
		if m == nil {
			t.Fatalf("survivor %d printed no report line:\n%s", i, outs[i])
		}
		if m[3] != fmt.Sprint(victim) {
			t.Errorf("survivor %d dead set [%s], want [%d]", i, m[3], victim)
		}
		if rounds == "" {
			rounds, budget = m[1], m[2]
			continue
		}
		// The quiescence rule and the epidemic must leave every survivor
		// with the identical stop round and budget view.
		if m[1] != rounds {
			t.Errorf("survivor %d stopped at round %s, others at %s", i, m[1], rounds)
		}
		if m[2] != budget {
			t.Errorf("survivor %d budget view %sW, others %sW", i, m[2], budget)
		}
	}
	if b, err := strconv.ParseFloat(budget, 64); err != nil || b >= 850 {
		t.Errorf("budget view %sW not shrunk below the configured 850W (parse err %v)", budget, err)
	}
}
