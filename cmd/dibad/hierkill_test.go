package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// hierReport matches the extended report line a -levels 2 daemon prints.
var hierReport = regexp.MustCompile(`agent (\d+): workload=\S+ cap=\S+ estimate=\S+ rounds=(\d+) budget=(\S+)W dead=\[([^\]]*)\] group=(\d+) lease=(-?\d+)mw epoch=(\d+) agg=(\S+) frozen=(\S+)`)

type hierResult struct {
	rounds int
	budget string
	dead   string
	group  int
	lease  int64
	epoch  int
	agg    bool
	frozen bool
}

func parseHierReport(t *testing.T, id int, out string) hierResult {
	t.Helper()
	m := hierReport.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("daemon %d printed no hierarchical report line:\n%s", id, out)
	}
	if m[1] != fmt.Sprint(id) {
		t.Fatalf("daemon %d report claims id %s", id, m[1])
	}
	atoi := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("daemon %d report field %q: %v", id, s, err)
		}
		return v
	}
	lease, err := strconv.ParseInt(m[6], 10, 64)
	if err != nil {
		t.Fatalf("daemon %d lease %q: %v", id, m[6], err)
	}
	return hierResult{
		rounds: atoi(m[2]), budget: m[3], dead: m[4], group: atoi(m[5]),
		lease: lease, epoch: atoi(m[7]), agg: m[8] == "true", frozen: m[9] == "true",
	}
}

// writeHierPeers builds a 3-groups-of-3 peers file on loopback and returns
// its path. Group g holds ids {3g, 3g+1, 3g+2}.
func writeHierPeers(t *testing.T) string {
	t.Helper()
	var peers strings.Builder
	peers.WriteString("group 0 0 1 2\ngroup 1 3 4 5\ngroup 2 6 7 8\n")
	for i := 0; i < 9; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&peers, "%d %s\n", i, ln.Addr().String())
		ln.Close()
	}
	path := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(path, []byte(peers.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkHierOutcome asserts the invariants every hierarchical drill ends on:
// the survivors of the victim's group agree bitwise on lease, budget view
// and epoch with the successor confirmed at a bumped epoch, the other
// groups are untouched, nobody is frozen at exit, and the acting
// aggregates' leases sum to exactly the configured budget.
func checkHierOutcome(t *testing.T, res map[int]hierResult, victim int, budgetMw int64) {
	t.Helper()
	groupOf := func(id int) int { return id / 3 }
	var leaseSum int64
	aggs := 0
	for id, r := range res {
		if r.group != groupOf(id) {
			t.Errorf("daemon %d reports group %d, want %d", id, r.group, groupOf(id))
		}
		if r.frozen {
			t.Errorf("daemon %d still frozen at exit", id)
		}
		if r.agg {
			aggs++
			leaseSum += r.lease
		}
		if groupOf(id) == groupOf(victim) {
			if r.dead != fmt.Sprint(victim) {
				t.Errorf("daemon %d dead set [%s], want [%d]", id, r.dead, victim)
			}
			if r.epoch < 2 {
				t.Errorf("daemon %d epoch %d, want >= 2 after failover", id, r.epoch)
			}
		} else {
			if r.dead != "" {
				t.Errorf("daemon %d dead set [%s], want []", id, r.dead)
			}
		}
	}
	if aggs != 3 {
		t.Errorf("%d acting aggregates at exit, want 3", aggs)
	}
	if leaseSum != budgetMw {
		t.Errorf("Σ(leases) over acting aggregates = %d mw, want exactly %d", leaseSum, budgetMw)
	}
	// The successor is the victim's next rank; its surviving peer agrees
	// bitwise on lease, budget view and epoch.
	succ, peer := res[victim+1], res[victim+2]
	if !succ.agg {
		t.Errorf("daemon %d did not take over as aggregate", victim+1)
	}
	if peer.agg {
		t.Errorf("daemon %d acts as aggregate while a lower rank lives", victim+2)
	}
	if succ.lease != peer.lease || succ.budget != peer.budget || succ.epoch != peer.epoch {
		t.Errorf("survivors disagree: %d has lease=%d budget=%s epoch=%d, %d has lease=%d budget=%s epoch=%d",
			victim+1, succ.lease, succ.budget, succ.epoch, victim+2, peer.lease, peer.budget, peer.epoch)
	}
}

// runHierDrill launches the 9-daemon two-level cluster with per-id extra
// args and returns outputs and errors.
func runHierDrill(t *testing.T, bin, peersPath string, horizon int, extra func(id int) []string) ([]string, []error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	benches := []string{"EP", "CG", "FT", "MG", "LU", "BT", "SP", "EP", "CG"}
	outs := make([]string, 9)
	errs := make([]error, 9)
	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		args := []string{
			"-id", fmt.Sprint(i), "-peers", peersPath, "-levels", "2",
			"-group", fmt.Sprint(i / 3), "-rank", fmt.Sprint(i % 3),
			"-budget", "1530", "-workload", benches[i], "-connect-timeout", "20s",
			"-gather-timeout", "500ms", "-heartbeat", "50ms",
			"-until-round", fmt.Sprint(horizon), "-round-interval", "2ms",
		}
		args = append(args, extra(i)...)
		wg.Add(1)
		go func(i int, args []string) {
			defer wg.Done()
			out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
			outs[i], errs[i] = string(out), err
		}(i, args)
	}
	wg.Wait()
	return outs, errs
}

// TestHierClusterSurvivesAggregateKill is the tentpole's process-level kill
// drill: a two-level cluster of nine daemons (three groups of three) loses
// group 1's aggregate agent mid-run to a deterministic crash. The survivors
// must detect the death, elect the next rank, rebuild the lease ledger from
// the upper-ring echoes under a bumped epoch, reconcile the leaf budget —
// and the acting aggregates' leases must again sum to exactly the
// configured budget.
func TestHierClusterSurvivesAggregateKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a 9-process TCP cluster")
	}
	bin := buildDibad(t)
	peersPath := writeHierPeers(t)
	const victim = 3 // rank 0 of group 1

	outs, errs := runHierDrill(t, bin, peersPath, 1200, func(i int) []string {
		if i == victim {
			// An odd send budget dies mid-broadcast, the asymmetric case.
			return []string{"-chaos-seed", "5", "-chaos-crash-after", "301"}
		}
		return nil
	})

	if errs[victim] == nil {
		t.Errorf("victim exited cleanly; want a crash\n%s", outs[victim])
	}
	res := make(map[int]hierResult)
	for i := 0; i < 9; i++ {
		if i == victim {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("survivor %d failed: %v\n%s", i, errs[i], outs[i])
		}
		r := parseHierReport(t, i, outs[i])
		if r.rounds != 1200 {
			t.Errorf("survivor %d stopped at round %d, want 1200", i, r.rounds)
		}
		res[i] = r
	}
	checkHierOutcome(t, res, victim, 1530000)
	if !strings.Contains(outs[victim+1], "promoted to aggregate") {
		t.Errorf("successor %d never logged its promotion:\n%s", victim+1, outs[victim+1])
	}
}

// TestHierClusterSurvivesInterLevelPartition forces the lease-expiry path
// at the process level: group 1 is severed from the upper ring (the same
// partition spec on every daemon makes the outage bidirectional) and its
// aggregate is killed inside the outage. The orphaned members' candidate
// cannot confirm, the lease TTL expires, and they freeze at the last leased
// budget minus the margin; when the window closes the held hellos flush,
// the candidate syncs from the echoes, the group thaws, and every lease
// invariant of the kill drill holds again.
func TestHierClusterSurvivesInterLevelPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a 9-process TCP cluster")
	}
	bin := buildDibad(t)
	peersPath := writeHierPeers(t)
	const victim = 3

	outs, errs := runHierDrill(t, bin, peersPath, 2500, func(i int) []string {
		args := []string{
			"-chaos-seed", fmt.Sprint(i + 1),
			"-chaos-partition-start", "1s", "-chaos-partition-dur", "2s",
			"-chaos-partition-scope", "group=1",
		}
		if i == victim {
			args = append(args, "-chaos-crash-after", "1801")
		}
		return args
	})

	if errs[victim] == nil {
		t.Errorf("victim exited cleanly; want a crash\n%s", outs[victim])
	}
	res := make(map[int]hierResult)
	for i := 0; i < 9; i++ {
		if i == victim {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("survivor %d failed: %v\n%s", i, errs[i], outs[i])
		}
		r := parseHierReport(t, i, outs[i])
		if r.rounds != 2500 {
			t.Errorf("survivor %d stopped at round %d, want 2500", i, r.rounds)
		}
		res[i] = r
	}
	checkHierOutcome(t, res, victim, 1530000)
	// The orphaned survivors froze during the outage and thawed at heal.
	for _, id := range []int{victim + 1, victim + 2} {
		if !strings.Contains(outs[id], "lease expired; froze") {
			t.Errorf("daemon %d never froze during the inter-level outage:\n%s", id, outs[id])
		}
		if !strings.Contains(outs[id], "lease view restored; thawed") {
			t.Errorf("daemon %d never thawed after the heal:\n%s", id, outs[id])
		}
	}
}

// TestSignalKillDrainsWireQueues is the shutdown audit: a SIGTERM mid-run
// must drain the per-connection send queues and log the same per-peer wire
// report a clean exit logs, then exit 0 — no coalesced batch may be lost in
// a signal shutdown. The control plane drains the same way: clients hammer
// GET /v1/caps straight through the SIGTERM, and every request the server
// accepted must complete with a whole, parseable JSON body — a truncated
// 200 means a request was dropped mid-response.
func TestSignalKillDrainsWireQueues(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a 3-process TCP cluster")
	}
	bin := buildDibad(t)
	const n = 3
	var peers strings.Builder
	apiAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&peers, "%d %s\n", i, ln.Addr().String())
		ln.Close()
		apiLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		apiAddrs[i] = apiLn.Addr().String()
		apiLn.Close()
	}
	peersPath := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(peersPath, []byte(peers.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmds := make([]*exec.Cmd, n)
	outs := make([]*strings.Builder, n)
	for i := 0; i < n; i++ {
		cmds[i] = exec.CommandContext(ctx, bin,
			"-id", fmt.Sprint(i), "-peers", peersPath, "-budget", "510",
			"-connect-timeout", "20s", "-until-round", "1000000", "-round-interval", "1ms",
			"-api", apiAddrs[i])
		outs[i] = &strings.Builder{}
		cmds[i].Stdout = outs[i]
		cmds[i].Stderr = outs[i]
		if err := cmds[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Let the ring form and exchange real traffic before pulling the plug.
	time.Sleep(2 * time.Second)

	// Hammer every daemon's control plane from here through the shutdown. A
	// connection error means the listener already closed (expected); a 200
	// with a truncated or invalid body means a request died mid-response.
	var served atomic.Int64
	stop := make(chan struct{})
	apiErrs := make(chan error, 64)
	var hammers sync.WaitGroup
	for i := 0; i < n; i++ {
		hammers.Add(1)
		go func(addr string) {
			defer hammers.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get("http://" + addr + "/v1/caps")
				if err != nil {
					// Refused/reset after the listener closed; back off and
					// re-check for the stop signal.
					time.Sleep(5 * time.Millisecond)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					continue
				}
				if err != nil {
					select {
					case apiErrs <- fmt.Errorf("%s: 200 response truncated mid-body: %v", addr, err):
					default:
					}
					return
				}
				if !json.Valid(body) {
					select {
					case apiErrs <- fmt.Errorf("%s: 200 response with invalid JSON: %q", addr, body):
					default:
					}
					return
				}
				served.Add(1)
			}
		}(apiAddrs[i])
	}

	time.Sleep(200 * time.Millisecond) // guarantee in-flight API traffic at signal time
	for i := 0; i < n; i++ {
		if err := cmds[i].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signaling daemon %d: %v", i, err)
		}
	}
	perPeer := regexp.MustCompile(`wire\[\S+\] peer (\d+): sent (\d+) msgs / \d+ B in \d+ flushes, recv (\d+) msgs`)
	for i := 0; i < n; i++ {
		if err := cmds[i].Wait(); err != nil {
			t.Errorf("daemon %d exited %v on SIGTERM, want 0:\n%s", i, err, outs[i].String())
			continue
		}
		out := outs[i].String()
		if !strings.Contains(out, "draining send queues") || !strings.Contains(out, "drained, exiting") {
			t.Errorf("daemon %d did not log the drain:\n%s", i, out)
		}
		if !strings.Contains(out, "api drained") {
			t.Errorf("daemon %d did not log the control-plane drain:\n%s", i, out)
		}
		m := perPeer.FindAllStringSubmatch(out, -1)
		if len(m) != 2 {
			t.Errorf("daemon %d logged %d per-peer wire lines, want 2:\n%s", i, len(m), out)
		}
		for _, pm := range m {
			if sent, _ := strconv.Atoi(pm[2]); sent == 0 {
				t.Errorf("daemon %d reports zero messages sent to peer %s before drain", i, pm[1])
			}
		}
	}
	close(stop)
	hammers.Wait()
	close(apiErrs)
	for err := range apiErrs {
		t.Error(err)
	}
	if served.Load() == 0 {
		t.Error("control-plane hammer completed zero reads; the drill proved nothing")
	}
}
