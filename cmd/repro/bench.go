package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"powercap/internal/diba"
	"powercap/internal/experiments"
	"powercap/internal/knapsack"
	"powercap/internal/layout"
	"powercap/internal/parallel"
	"powercap/internal/thermal"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// repro bench: a machine-readable performance baseline. It times every
// registry experiment plus the DiBA engine micro-benchmarks and writes
// BENCH_<date>.json, so regressions show up as a diff between two committed
// baselines (compare ns_per_op / allocs_per_op across files).

type benchResult struct {
	Name        string `json:"name"`
	Runs        int    `json:"runs"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

type benchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	Scale      string        `json:"scale"`
	Seed       int64         `json:"seed"`
	Results    []benchResult `json:"results"`
}

// measure runs fn repeatedly (after one untimed warm-up) until minTime has
// elapsed or maxRuns runs completed, and reports per-op time and
// allocations. Mallocs/TotalAlloc are monotonic counters, so the deltas are
// valid whether or not a GC happens mid-measurement.
func measure(name string, minTime time.Duration, maxRuns int, fn func() error) (benchResult, error) {
	if err := fn(); err != nil {
		return benchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	runs := 0
	for runs < maxRuns && (runs == 0 || time.Since(start) < minTime) {
		if err := fn(); err != nil {
			return benchResult{}, fmt.Errorf("%s: %w", name, err)
		}
		runs++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchResult{
		Name:        name,
		Runs:        runs,
		NsPerOp:     elapsed.Nanoseconds() / int64(runs),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(runs),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(runs),
	}, nil
}

// benchEngine times raw DiBA rounds at a given cluster size.
func benchEngine(n int, parallelStep bool, seed int64) (benchResult, error) {
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return benchResult{}, err
	}
	en, err := diba.New(topology.Ring(n), a.UtilitySlice(), 170*float64(n), diba.Config{})
	if err != nil {
		return benchResult{}, err
	}
	name := fmt.Sprintf("diba.Step/n=%d", n)
	step := func() error { en.Step(); return nil }
	if parallelStep {
		name = fmt.Sprintf("diba.StepParallel/n=%d", n)
		step = func() error { en.StepParallel(0); return nil }
	}
	return measure(name, 300*time.Millisecond, 1_000_000, step)
}

// benchCentralized times the centralized comparator stack's hot paths:
// the MCKP budgeter (cold solve, warm workspace re-solve, SolveAll budget
// read-off), the thermal room evaluation, and the layout local search.
func benchCentralized(seed int64) ([]benchResult, error) {
	var out []benchResult
	add := func(res benchResult, err error) error {
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d allocs/op\n",
			res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp)
		out = append(out, res)
		return nil
	}

	// MCKP over the Chapter 3 cap grid at 400 servers (the quick fig3.13
	// size).
	const n = 400
	rng := rand.New(rand.NewSource(seed))
	srv := workload.Chapter3Server
	caps := workload.CapGrid(srv, 5)
	sets := make([]workload.Set, n)
	for i := range sets {
		sets[i] = workload.NewHeteroSet(workload.Desktop, rng)
	}
	choices, err := knapsack.CapGridChoices(n, caps, func(i int, cap float64) float64 {
		return sets[i].GroundTruth(cap, srv)
	})
	if err != nil {
		return nil, err
	}
	prob := knapsack.Problem{Choices: choices, Budget: 148 * n, StepW: 5}
	if err := add(measure("knapsack.Solve/n=400", 200*time.Millisecond, 10_000, func() error {
		_, err := knapsack.Solve(prob)
		return err
	})); err != nil {
		return nil, err
	}
	var ws knapsack.Workspace
	var sol knapsack.Solution
	if err := add(measure("knapsack.SolveTo/warm/n=400", 200*time.Millisecond, 10_000, func() error {
		return ws.SolveTo(&sol, prob)
	})); err != nil {
		return nil, err
	}
	all, err := ws.SolveAll(prob)
	if err != nil {
		return nil, err
	}
	budget := 140.0 * n
	if err := add(measure("knapsack.SolveAll.At/n=400", 100*time.Millisecond, 1_000_000, func() error {
		err := all.SolveTo(&sol, budget)
		budget += 1
		if budget > 148*n {
			budget = 140 * n
		}
		return err
	})); err != nil {
		return nil, err
	}

	// Thermal room evaluation at the default 80-rack room.
	room, err := thermal.NewDefaultRoom(1.8, 24)
	if err != nil {
		return nil, err
	}
	power := make([]float64, room.N())
	for i := range power {
		power[i] = 4000 + 50*float64(i%7)
	}
	if err := add(measure("thermal.CoolingPower/n=80", 100*time.Millisecond, 1_000_000, func() error {
		_, _, err := room.CoolingPower(power)
		return err
	})); err != nil {
		return nil, err
	}

	// Layout local search on the full room, one scenario, quick iteration
	// count (the fig5.4 shape).
	lrng := rand.New(rand.NewSource(seed))
	lp := layout.Problem{
		Rise:      room.RiseMatrix(),
		Scenarios: []layout.Scenario{{Weight: 1, Power: power}},
	}
	if err := add(measure("layout.LocalSearch/n=80", 300*time.Millisecond, 1000, func() error {
		_, err := layout.LocalSearch(lp, nil, 3000, lrng)
		return err
	})); err != nil {
		return nil, err
	}
	return out, nil
}

func runBench(scale experiments.Scale, seed int64, out string) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	scaleName := "quick"
	if scale == experiments.Full {
		scaleName = "full"
	}
	report := benchReport{
		Date:       time.Now().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    parallel.Workers(),
		Scale:      scaleName,
		Seed:       seed,
	}

	for _, n := range []int{1000, 10000} {
		for _, par := range []bool{false, true} {
			res, err := benchEngine(n, par, seed)
			if err != nil {
				return err
			}
			fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d allocs/op\n",
				res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp)
			report.Results = append(report.Results, res)
		}
	}

	central, err := benchCentralized(seed)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, central...)

	for _, id := range ids() {
		r := registry[id]
		res, err := measure("experiment/"+id, 200*time.Millisecond, 3, func() error {
			_, err := r(scale, seed)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d allocs/op\n",
			res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp)
		report.Results = append(report.Results, res)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(report.Results))
	return nil
}
