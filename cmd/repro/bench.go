package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"powercap/internal/diba"
	"powercap/internal/experiments"
	"powercap/internal/knapsack"
	"powercap/internal/layout"
	"powercap/internal/netsim"
	"powercap/internal/parallel"
	"powercap/internal/solver"
	"powercap/internal/thermal"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// repro bench: a machine-readable performance baseline. It times every
// registry experiment plus the DiBA engine micro-benchmarks and writes
// BENCH_<date>.json, so regressions show up as a diff between two committed
// baselines (compare ns_per_op / allocs_per_op across files).

type benchResult struct {
	Name        string `json:"name"`
	Runs        int    `json:"runs"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	// Transport throughput benchmarks also report wire-level rates,
	// measured from the transport's own WireStats counters.
	MsgsPerSec  float64 `json:"msgs_per_sec,omitempty"`
	BytesPerMsg float64 `json:"bytes_per_msg,omitempty"`
	// Engine step benchmarks also report the sustained round rate, and the
	// convergence-quality benchmarks the rounds to 99% of the centralized
	// reference plus the worst budget margin (min over rounds and
	// constraint families of budget − usage; negative = a violation).
	RoundsPerSec float64 `json:"rounds_per_sec,omitempty"`
	Rounds       int     `json:"rounds,omitempty"`
	WorstMarginW float64 `json:"worst_margin_w,omitempty"`
	// The -des series also reports sustained event throughput, and the
	// tick-vs-event scenario pair the measured wall-clock speedup.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	SpeedupX     float64 `json:"speedup_x,omitempty"`
	// The -gray series reports the virtual-slot model's stall/mitigation
	// counters and conservation gap per configuration.
	StalledRounds int     `json:"stalled_rounds,omitempty"`
	Mitigations   int     `json:"mitigations,omitempty"`
	SlotsPerRound float64 `json:"slots_per_round,omitempty"`
	GapW          float64 `json:"gap_w,omitempty"`
	// The apiload series reports serving throughput and latency quantiles.
	QPS    float64 `json:"qps,omitempty"`
	P50Us  float64 `json:"p50_us,omitempty"`
	P99Us  float64 `json:"p99_us,omitempty"`
	P999Us float64 `json:"p999_us,omitempty"`
}

type benchReport struct {
	Date       string        `json:"date"`
	Tag        string        `json:"tag,omitempty"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Workers    int           `json:"workers"`
	Scale      string        `json:"scale"`
	Seed       int64         `json:"seed"`
	Results    []benchResult `json:"results"`
}

// benchTag is the -tag flag: a free-form label baked into every bench
// report so a file is self-describing beyond its filename.
var benchTag string

// newBenchReport stamps the metadata shared by every BENCH_*.json series.
func newBenchReport(scale string, seed int64) benchReport {
	return benchReport{
		Date:      time.Now().Format(time.RFC3339),
		Tag:       benchTag,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workers:   parallel.Workers(),
		Scale:     scale,
		Seed:      seed,
	}
}

// writeBenchReport records GOMAXPROCS as it actually was during the runs
// (not at flag-parse time, which predates any SetWorkers adjustment) and
// writes the report.
func writeBenchReport(out string, report *benchReport) error {
	report.GOMAXPROCS = runtime.GOMAXPROCS(0)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(report.Results))
	return nil
}

// measure runs fn repeatedly (after one untimed warm-up) until minTime has
// elapsed or maxRuns runs completed, and reports per-op time and
// allocations. Mallocs/TotalAlloc are monotonic counters, so the deltas are
// valid whether or not a GC happens mid-measurement.
func measure(name string, minTime time.Duration, maxRuns int, fn func() error) (benchResult, error) {
	if err := fn(); err != nil {
		return benchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	runs := 0
	for runs < maxRuns && (runs == 0 || time.Since(start) < minTime) {
		if err := fn(); err != nil {
			return benchResult{}, fmt.Errorf("%s: %w", name, err)
		}
		runs++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchResult{
		Name:        name,
		Runs:        runs,
		NsPerOp:     elapsed.Nanoseconds() / int64(runs),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(runs),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(runs),
	}, nil
}

// benchEngine times raw DiBA rounds at a given cluster size.
func benchEngine(n int, parallelStep bool, seed int64) (benchResult, error) {
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return benchResult{}, err
	}
	en, err := diba.New(topology.Ring(n), a.UtilitySlice(), 170*float64(n), diba.Config{})
	if err != nil {
		return benchResult{}, err
	}
	name := fmt.Sprintf("diba.Step/n=%d", n)
	step := func() error { en.Step(); return nil }
	if parallelStep {
		name = fmt.Sprintf("diba.StepParallel/n=%d", n)
		step = func() error { en.StepParallel(0); return nil }
	}
	return measure(name, 300*time.Millisecond, 1_000_000, step)
}

// hierShape factors n into nested-ring counts for the hierarchical scale
// series: racks of 40 servers, rows of 25 racks, then levels of 10
// upward — so 1k is cluster+rack, 10k adds a row level, 100k a pod level,
// and 1M two levels above the rows.
func hierShape(n int) []int {
	rem := n
	var tail []int
	for _, c := range []int{40, 25} {
		if rem%c == 0 && rem/c >= 2 {
			tail = append([]int{c}, tail...)
			rem /= c
		}
	}
	for rem%10 == 0 && rem/10 >= 2 {
		tail = append([]int{10}, tail...)
		rem /= 10
	}
	return append([]int{rem}, tail...)
}

// benchHier times raw hierarchical DiBA rounds at a given cluster size on
// the nested-ring scale topology, and verifies every conservation
// invariant still holds after the timed rounds.
func benchHier(n int, parallelStep bool, seed int64) (benchResult, error) {
	counts := hierShape(n)
	g, gofs := topology.NestedRings(counts...)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return benchResult{}, err
	}
	levels := make([]diba.Level, len(gofs))
	for l, gof := range gofs {
		ng := 0
		for _, k := range gof {
			if k >= ng {
				ng = k + 1
			}
		}
		per := 152 + 2*float64(l) // higher levels slightly slacker
		b := make([]float64, ng)
		for k := range b {
			b[k] = per * float64(n/ng)
		}
		levels[l] = diba.Level{GroupOf: gof, Budget: b}
	}
	en, err := diba.NewHierLevels(g, a.UtilitySlice(), 150*float64(n), levels, diba.Config{})
	if err != nil {
		return benchResult{}, err
	}
	defer en.Close()
	name := fmt.Sprintf("diba.HierStep/n=%d", n)
	step := func() error { en.Step(); return nil }
	if parallelStep {
		name = fmt.Sprintf("diba.HierStepParallel/n=%d", n)
		step = func() error { en.StepParallel(0); return nil }
	}
	res, err := measure(name, 300*time.Millisecond, 1_000_000, step)
	if err != nil {
		return benchResult{}, err
	}
	// Conservation sums n floats from scratch; scale the tolerance with n.
	if err := en.CheckInvariant(1e-6 * float64(n)); err != nil {
		return benchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	res.RoundsPerSec = 1e9 / float64(res.NsPerOp)
	return res, nil
}

// benchHierConvergence runs the convergence-quality pair at matched n on
// the paper's rack topology: hierarchical (rack PDUs binding) and flat
// engines each to 99% of their centralized reference, recording rounds and
// the worst budget margin seen on any round.
func benchHierConvergence(n int, seed int64) ([]benchResult, error) {
	const perRack = 40
	nRacks := n / perRack
	g, gofs := topology.NestedRings(nRacks, perRack)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return nil, err
	}
	us := a.UtilitySlice()
	clusterBudget := 160.0 * float64(n)
	rackBudget := 155.0 * perRack
	rackOf := gofs[0]
	sh := solver.Hierarchy{RackOf: rackOf, RackBudget: make([]float64, nRacks)}
	for rk := range sh.RackBudget {
		sh.RackBudget[rk] = rackBudget
	}
	hopt, err := solver.OptimalHierarchical(us, clusterBudget, sh)
	if err != nil {
		return nil, err
	}
	fopt, err := solver.Optimal(us, clusterBudget)
	if err != nil {
		return nil, err
	}
	const maxIters = 30000
	var out []benchResult

	hier, err := diba.NewHier(g, us, clusterBudget,
		diba.Racks{RackOf: rackOf, RackBudget: sh.RackBudget}, diba.Config{})
	if err != nil {
		return nil, err
	}
	defer hier.Close()
	start := time.Now()
	rounds := maxIters
	margin := math.Inf(1)
	for r := 1; r <= maxIters; r++ {
		hier.StepAuto()
		if m := clusterBudget - hier.TotalPower(); m < margin {
			margin = m
		}
		for rk := 0; rk < nRacks; rk++ {
			if m := rackBudget - hier.RackPower(rk); m < margin {
				margin = m
			}
		}
		if hier.TotalUtility() >= 0.99*hopt.Utility {
			rounds = r
			break
		}
	}
	out = append(out, benchResult{
		Name: fmt.Sprintf("diba.HierConverge/n=%d", n), Runs: 1,
		NsPerOp: time.Since(start).Nanoseconds(), Rounds: rounds, WorstMarginW: margin,
	})

	flat, err := diba.New(g, us, clusterBudget, diba.Config{})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	rounds = maxIters
	margin = math.Inf(1)
	for r := 1; r <= maxIters; r++ {
		flat.StepAuto()
		if m := clusterBudget - flat.TotalPower(); m < margin {
			margin = m
		}
		if flat.TotalUtility() >= 0.99*fopt.Utility {
			rounds = r
			break
		}
	}
	out = append(out, benchResult{
		Name: fmt.Sprintf("diba.FlatConverge/n=%d", n), Runs: 1,
		NsPerOp: time.Since(start).Nanoseconds(), Rounds: rounds, WorstMarginW: margin,
	})
	return out, nil
}

// benchEstimate is the common-case round message all transport benchmarks
// move: every field a fault-free broadcast carries, with full-precision
// floats so the JSON size is honest.
var benchEstimate = diba.Message{From: 12, Round: 157, E: -0.6666666666666666, Degree: 2, P: 145.23456789012345}

// benchLoopback pushes msgs estimate messages one way through a fresh
// loopback TCP pair and reports throughput plus measured bytes per message
// from the transport's wire accounting.
func benchLoopback(name string, opts []diba.TCPOption, msgs int) (benchResult, error) {
	a, err := diba.NewTCPTransport(0, "127.0.0.1:0", opts...)
	if err != nil {
		return benchResult{}, err
	}
	defer a.Close()
	b, err := diba.NewTCPTransport(1, "127.0.0.1:0", opts...)
	if err != nil {
		return benchResult{}, err
	}
	defer b.Close()
	addrs := map[int]string{0: a.Addr(), 1: b.Addr()}
	if err := a.ConnectNeighbors([]int{1}, addrs, 5*time.Second); err != nil {
		return benchResult{}, err
	}
	if err := b.ConnectNeighbors([]int{0}, addrs, 5*time.Second); err != nil {
		return benchResult{}, err
	}
	// One warm-up round trip settles the codec negotiation before counting.
	if err := a.Send(1, benchEstimate); err != nil {
		return benchResult{}, err
	}
	if _, err := b.RecvTimeout(5 * time.Second); err != nil {
		return benchResult{}, err
	}
	if err := b.Send(0, benchEstimate); err != nil {
		return benchResult{}, err
	}
	if _, err := a.RecvTimeout(5 * time.Second); err != nil {
		return benchResult{}, err
	}

	base := a.WireStats()[1]
	done := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			if _, err := b.RecvTimeout(30 * time.Second); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	m := benchEstimate
	start := time.Now()
	for i := 0; i < msgs; i++ {
		m.Round = i + 158
		if err := a.Send(1, m); err != nil {
			return benchResult{}, err
		}
	}
	if err := <-done; err != nil {
		return benchResult{}, err
	}
	elapsed := time.Since(start)
	st := a.WireStats()[1]
	sent := st.MsgsSent - base.MsgsSent
	return benchResult{
		Name:        name,
		Runs:        msgs,
		NsPerOp:     elapsed.Nanoseconds() / int64(msgs),
		MsgsPerSec:  float64(sent) / elapsed.Seconds(),
		BytesPerMsg: float64(st.BytesSent-base.BytesSent) / float64(sent),
	}, nil
}

// benchTransport measures the DiBA message plane: codec micro-benchmarks,
// loopback TCP throughput for each codec x coalescing combination, and the
// in-process ChanNetwork as the no-socket upper bound. The binary+coalesced
// vs json+unbuffered pair is the Table 4.2-adjacent headline: same message
// plane, measured bytes and rate.
func benchTransport() ([]benchResult, error) {
	var out []benchResult
	add := func(res benchResult, err error) error {
		if err != nil {
			return err
		}
		extra := ""
		if res.MsgsPerSec > 0 {
			extra = fmt.Sprintf("  %10.0f msg/s  %6.1f B/msg", res.MsgsPerSec, res.BytesPerMsg)
		}
		fmt.Printf("  %-28s %7d runs  %10d ns/op%s\n", res.Name, res.Runs, res.NsPerOp, extra)
		out = append(out, res)
		return nil
	}

	// Codec microbenchmarks: encode and decode of the common-case frame.
	var buf []byte
	if err := add(measure("wire.EncodeTo/estimate", 100*time.Millisecond, 10_000_000, func() error {
		buf = diba.EncodeTo(buf[:0], benchEstimate)
		return nil
	})); err != nil {
		return nil, err
	}
	frame := diba.EncodeTo(nil, benchEstimate)
	if err := add(measure("wire.Decode/estimate", 100*time.Millisecond, 10_000_000, func() error {
		_, _, err := diba.Decode(frame)
		return err
	})); err != nil {
		return nil, err
	}
	if err := add(measure("json.Marshal/estimate", 100*time.Millisecond, 10_000_000, func() error {
		_, err := json.Marshal(benchEstimate)
		return err
	})); err != nil {
		return nil, err
	}

	// Loopback TCP: the codec and coalescing axes, separately and together.
	const msgs = 20000
	variants := []struct {
		name string
		opts []diba.TCPOption
	}{
		{"tcp/json/unbuffered", []diba.TCPOption{diba.WithWireCodec(diba.WireJSON), diba.WithSendQueue(0)}},
		{"tcp/json/coalesced", []diba.TCPOption{diba.WithWireCodec(diba.WireJSON)}},
		{"tcp/binary/unbuffered", []diba.TCPOption{diba.WithSendQueue(0)}},
		{"tcp/binary/coalesced", nil},
	}
	byName := make(map[string]benchResult, len(variants))
	for _, v := range variants {
		res, err := benchLoopback(v.name, v.opts, msgs)
		if err != nil {
			return nil, err
		}
		byName[v.name] = res
		if err := add(res, nil); err != nil {
			return nil, err
		}
	}

	// ChanNetwork: message plane with no sockets at all.
	net := diba.NewChanNetwork(2, msgs+1)
	ep0, ep1 := net.Endpoint(0), net.Endpoint(1)
	defer ep0.Close()
	defer ep1.Close()
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := ep0.Send(1, benchEstimate); err != nil {
			return nil, err
		}
	}
	for i := 0; i < msgs; i++ {
		if _, err := ep1.Recv(); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	if err := add(benchResult{
		Name:       "chan/in-process",
		Runs:       msgs,
		NsPerOp:    elapsed.Nanoseconds() / int64(msgs),
		MsgsPerSec: float64(msgs) / elapsed.Seconds(),
	}, nil); err != nil {
		return nil, err
	}

	// Measured bytes per message against the netsim packet model: a DiBA
	// ring exchanges d·N messages per round (Section 4.3.2), so scaling the
	// model by the measured wire size gives the modeled traffic volume the
	// WireStats counters should reproduce on a real deployment.
	jsonB := byName["tcp/json/unbuffered"].BytesPerMsg
	binB := byName["tcp/binary/coalesced"].BytesPerMsg
	const ringN, ringDeg = 5, 2
	fmt.Printf("  model: %d-node ring round = %.0f B binary / %.0f B json (netsim d*N x measured B/msg, %.2fx)\n",
		ringN,
		netsim.BytesPerIteration(netsim.DiBA, ringN, ringDeg, binB),
		netsim.BytesPerIteration(netsim.DiBA, ringN, ringDeg, jsonB),
		jsonB/binB)
	return out, nil
}

// benchCentralized times the centralized comparator stack's hot paths:
// the MCKP budgeter (cold solve, warm workspace re-solve, SolveAll budget
// read-off), the thermal room evaluation, and the layout local search.
func benchCentralized(seed int64) ([]benchResult, error) {
	var out []benchResult
	add := func(res benchResult, err error) error {
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d allocs/op\n",
			res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp)
		out = append(out, res)
		return nil
	}

	// MCKP over the Chapter 3 cap grid at 400 servers (the quick fig3.13
	// size).
	const n = 400
	rng := rand.New(rand.NewSource(seed))
	srv := workload.Chapter3Server
	caps := workload.CapGrid(srv, 5)
	sets := make([]workload.Set, n)
	for i := range sets {
		sets[i] = workload.NewHeteroSet(workload.Desktop, rng)
	}
	choices, err := knapsack.CapGridChoices(n, caps, func(i int, cap float64) float64 {
		return sets[i].GroundTruth(cap, srv)
	})
	if err != nil {
		return nil, err
	}
	prob := knapsack.Problem{Choices: choices, Budget: 148 * n, StepW: 5}
	if err := add(measure("knapsack.Solve/n=400", 200*time.Millisecond, 10_000, func() error {
		_, err := knapsack.Solve(prob)
		return err
	})); err != nil {
		return nil, err
	}
	var ws knapsack.Workspace
	var sol knapsack.Solution
	if err := add(measure("knapsack.SolveTo/warm/n=400", 200*time.Millisecond, 10_000, func() error {
		return ws.SolveTo(&sol, prob)
	})); err != nil {
		return nil, err
	}
	all, err := ws.SolveAll(prob)
	if err != nil {
		return nil, err
	}
	budget := 140.0 * n
	if err := add(measure("knapsack.SolveAll.At/n=400", 100*time.Millisecond, 1_000_000, func() error {
		err := all.SolveTo(&sol, budget)
		budget += 1
		if budget > 148*n {
			budget = 140 * n
		}
		return err
	})); err != nil {
		return nil, err
	}

	// Thermal room evaluation at the default 80-rack room.
	room, err := thermal.NewDefaultRoom(1.8, 24)
	if err != nil {
		return nil, err
	}
	power := make([]float64, room.N())
	for i := range power {
		power[i] = 4000 + 50*float64(i%7)
	}
	if err := add(measure("thermal.CoolingPower/n=80", 100*time.Millisecond, 1_000_000, func() error {
		_, _, err := room.CoolingPower(power)
		return err
	})); err != nil {
		return nil, err
	}

	// Layout local search on the full room, one scenario, quick iteration
	// count (the fig5.4 shape).
	lrng := rand.New(rand.NewSource(seed))
	lp := layout.Problem{
		Rise:      room.RiseMatrix(),
		Scenarios: []layout.Scenario{{Weight: 1, Power: power}},
	}
	if err := add(measure("layout.LocalSearch/n=80", 300*time.Millisecond, 1000, func() error {
		_, err := layout.LocalSearch(lp, nil, 3000, lrng)
		return err
	})); err != nil {
		return nil, err
	}
	return out, nil
}

func runBench(scale experiments.Scale, seed int64, out string, hierN int) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	scaleName := "quick"
	if scale == experiments.Full {
		scaleName = "full"
	}
	report := newBenchReport(scaleName, seed)

	for _, n := range []int{1000, 10000} {
		for _, par := range []bool{false, true} {
			res, err := benchEngine(n, par, seed)
			if err != nil {
				return err
			}
			fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d allocs/op\n",
				res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp)
			report.Results = append(report.Results, res)
		}
	}

	// Hierarchical scale series: rounds/sec at 1k/10k/100k/1M on the
	// nested-ring budget tree, capped by -hiern (the 100k and 1M points
	// cost real time and memory, so the default stops at 10k).
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		if n > hierN {
			continue
		}
		for _, par := range []bool{false, true} {
			res, err := benchHier(n, par, seed)
			if err != nil {
				return err
			}
			fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d allocs/op  %8.1f rounds/s\n",
				res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp, res.RoundsPerSec)
			report.Results = append(report.Results, res)
		}
	}
	for _, n := range []int{1000, 10000} {
		if n > hierN {
			continue
		}
		convs, err := benchHierConvergence(n, seed)
		if err != nil {
			return err
		}
		for _, res := range convs {
			fmt.Printf("  %-28s %5d rounds %12d ns total  %8.2f W worst margin\n",
				res.Name, res.Rounds, res.NsPerOp, res.WorstMarginW)
			report.Results = append(report.Results, res)
		}
	}

	trans, err := benchTransport()
	if err != nil {
		return err
	}
	report.Results = append(report.Results, trans...)

	central, err := benchCentralized(seed)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, central...)

	for _, id := range ids() {
		r := registry[id]
		res, err := measure("experiment/"+id, 200*time.Millisecond, 3, func() error {
			_, err := r(scale, seed)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d allocs/op\n",
			res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp)
		report.Results = append(report.Results, res)
	}

	return writeBenchReport(out, &report)
}
