package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"powercap/internal/diba"
	"powercap/internal/experiments"
	"powercap/internal/parallel"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// repro bench: a machine-readable performance baseline. It times every
// registry experiment plus the DiBA engine micro-benchmarks and writes
// BENCH_<date>.json, so regressions show up as a diff between two committed
// baselines (compare ns_per_op / allocs_per_op across files).

type benchResult struct {
	Name        string `json:"name"`
	Runs        int    `json:"runs"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

type benchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	Scale      string        `json:"scale"`
	Seed       int64         `json:"seed"`
	Results    []benchResult `json:"results"`
}

// measure runs fn repeatedly (after one untimed warm-up) until minTime has
// elapsed or maxRuns runs completed, and reports per-op time and
// allocations. Mallocs/TotalAlloc are monotonic counters, so the deltas are
// valid whether or not a GC happens mid-measurement.
func measure(name string, minTime time.Duration, maxRuns int, fn func() error) (benchResult, error) {
	if err := fn(); err != nil {
		return benchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	runs := 0
	for runs < maxRuns && (runs == 0 || time.Since(start) < minTime) {
		if err := fn(); err != nil {
			return benchResult{}, fmt.Errorf("%s: %w", name, err)
		}
		runs++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchResult{
		Name:        name,
		Runs:        runs,
		NsPerOp:     elapsed.Nanoseconds() / int64(runs),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(runs),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(runs),
	}, nil
}

// benchEngine times raw DiBA rounds at a given cluster size.
func benchEngine(n int, parallelStep bool, seed int64) (benchResult, error) {
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return benchResult{}, err
	}
	en, err := diba.New(topology.Ring(n), a.UtilitySlice(), 170*float64(n), diba.Config{})
	if err != nil {
		return benchResult{}, err
	}
	name := fmt.Sprintf("diba.Step/n=%d", n)
	step := func() error { en.Step(); return nil }
	if parallelStep {
		name = fmt.Sprintf("diba.StepParallel/n=%d", n)
		step = func() error { en.StepParallel(0); return nil }
	}
	return measure(name, 300*time.Millisecond, 1_000_000, step)
}

func runBench(scale experiments.Scale, seed int64, out string) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	scaleName := "quick"
	if scale == experiments.Full {
		scaleName = "full"
	}
	report := benchReport{
		Date:       time.Now().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    parallel.Workers(),
		Scale:      scaleName,
		Seed:       seed,
	}

	for _, n := range []int{1000, 10000} {
		for _, par := range []bool{false, true} {
			res, err := benchEngine(n, par, seed)
			if err != nil {
				return err
			}
			fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d allocs/op\n",
				res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp)
			report.Results = append(report.Results, res)
		}
	}

	for _, id := range ids() {
		r := registry[id]
		res, err := measure("experiment/"+id, 200*time.Millisecond, 3, func() error {
			_, err := r(scale, seed)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d allocs/op\n",
			res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp)
		report.Results = append(report.Results, res)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(report.Results))
	return nil
}
