package main

import (
	"fmt"
	"math/rand"
	"time"

	"powercap/internal/cluster"
	"powercap/internal/des"
	"powercap/internal/dessim"
	"powercap/internal/experiments"
)

// repro bench -des: the shared-clock event core's performance baseline.
// Micro-benchmarks for the arena heap and the N-source scheduler merge,
// the ported dessim's sustained event rate, and the headline comparison:
// a 100k-node, 1-hour sparse scenario (1% of servers churn per minute)
// run event-driven vs with the legacy O(N)-per-second loop structure.
// Every hot-path entry is guarded to 0 allocs/op and the scenario pair is
// required to agree bit-for-bit and to show ≥ 10x wall-clock speedup, so
// this doubles as the CI smoke test for the event core.

// requireZeroAllocs enforces the hot-path allocation guard on a measured
// result.
func requireZeroAllocs(res benchResult) error {
	if res.AllocsPerOp != 0 {
		return fmt.Errorf("%s: %d allocs/op on a zero-alloc hot path", res.Name, res.AllocsPerOp)
	}
	return nil
}

// benchDesHeap measures steady-state push+pop at a constant heap depth.
func benchDesHeap() (benchResult, error) {
	var h des.Heap
	const depth = 1024
	h.Grow(depth + 1)
	rng := rand.New(rand.NewSource(1))
	// Pre-drawn deltas keep the measured loop free of RNG cost variance.
	deltas := make([]float64, 4096)
	for i := range deltas {
		deltas[i] = rng.ExpFloat64()
	}
	t := 0.0
	for i := 0; i < depth; i++ {
		t += deltas[i]
		h.Push(des.Item{Time: t})
	}
	i := 0
	res, err := measure("des.Heap/push-pop/depth=1k", 200*time.Millisecond, 50_000_000, func() error {
		h.Push(des.Item{Time: h.PeekTime() + deltas[i&4095]})
		i++
		h.Pop()
		return nil
	})
	if err != nil {
		return res, err
	}
	res.EventsPerSec = 1e9 / float64(res.NsPerOp)
	return res, requireZeroAllocs(res)
}

// benchPoissonSource is a self-rescheduling event source: each processed
// event schedules its successor one exponential gap later, which keeps a
// scheduler merge benchmark in steady state forever.
type benchPoissonSource struct {
	q   des.Heap
	rng *rand.Rand
}

func newBenchPoissonSource(rng *rand.Rand) *benchPoissonSource {
	s := &benchPoissonSource{rng: rng}
	s.q.Grow(2)
	s.q.Push(des.Item{Time: rng.ExpFloat64()})
	return s
}

func (s *benchPoissonSource) HasPendingEvents() bool     { return s.q.Len() > 0 }
func (s *benchPoissonSource) PeekNextEventTime() float64 { return s.q.PeekTime() }
func (s *benchPoissonSource) ProcessNextEvent() error {
	ev := s.q.Pop()
	s.q.Push(des.Item{Time: ev.Time + s.rng.ExpFloat64()})
	return nil
}

// benchSchedulerMerge measures one Scheduler.Step over k live sources.
func benchSchedulerMerge(k int, seed int64) (benchResult, error) {
	prng := des.NewPartitionedRNG(seed)
	sched := des.NewScheduler()
	for i := 0; i < k; i++ {
		sched.Add(newBenchPoissonSource(prng.Stream(uint64(i))))
	}
	step := func() error {
		ok, err := sched.Step()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("scheduler drained with self-rescheduling sources")
		}
		return nil
	}
	for i := 0; i < 1024; i++ {
		if err := step(); err != nil {
			return benchResult{}, err
		}
	}
	res, err := measure(fmt.Sprintf("des.Scheduler/step/sources=%d", k),
		200*time.Millisecond, 20_000_000, step)
	if err != nil {
		return res, err
	}
	res.EventsPerSec = 1e9 / float64(res.NsPerOp)
	return res, requireZeroAllocs(res)
}

// benchDessimEvents measures the ported queueing simulator's sustained
// event rate on the paper's Table 5.1 mix.
func benchDessimEvents(seed int64) (benchResult, error) {
	sim, err := dessim.NewSim(dessim.Config{
		Types:          dessim.Table51(80, 10),
		ArrivalRate:    50,
		MeanJobSeconds: 120,
		Horizon:        1e15, // effectively unbounded for the measured window
		Seed:           seed,
	})
	if err != nil {
		return benchResult{}, err
	}
	for i := 0; i < 20000; i++ {
		if err := sim.ProcessNextEvent(); err != nil {
			return benchResult{}, err
		}
	}
	res, err := measure("dessim.ProcessNextEvent/table5.1", 200*time.Millisecond, 20_000_000,
		sim.ProcessNextEvent)
	if err != nil {
		return res, err
	}
	res.EventsPerSec = 1e9 / float64(res.NsPerOp)
	return res, requireZeroAllocs(res)
}

// benchSparseScenario runs the headline pair: the identical 100k-node,
// 1-hour, 1%-churn-per-minute scenario through both runners, checks the
// results agree exactly, and requires the event loop to win by ≥ 10x.
func benchSparseScenario(seed int64) ([]benchResult, error) {
	sc := cluster.Scenario{
		N:                  100_000,
		Seed:               seed,
		HorizonSeconds:     3600,
		InitialBudgetW:     130 * 100_000,
		ChurnPerSecond:     0.01 / 60, // 1% of servers per minute
		SampleEverySeconds: 60,
	}

	start := time.Now()
	ev, err := cluster.RunScenarioEvents(sc)
	if err != nil {
		return nil, err
	}
	evNs := time.Since(start).Nanoseconds()

	start = time.Now()
	tick, err := cluster.RunScenarioTicks(sc)
	if err != nil {
		return nil, err
	}
	tickNs := time.Since(start).Nanoseconds()

	if ev.ChurnEvents != tick.ChurnEvents || ev.Refreshes != tick.Refreshes ||
		ev.FinalPowerW != tick.FinalPowerW || len(ev.Samples) != len(tick.Samples) {
		return nil, fmt.Errorf("scenario runners diverged: event %+v vs tick %+v", ev, tick)
	}
	if ev.ChurnEvents == 0 {
		return nil, fmt.Errorf("sparse scenario produced no events — nothing was measured")
	}
	speedup := float64(tickNs) / float64(evNs)
	if speedup < 10 {
		return nil, fmt.Errorf("sparse 100k scenario: event loop only %.1fx faster than tick loop (want >= 10x): %v vs %v",
			speedup, time.Duration(evNs), time.Duration(tickNs))
	}
	return []benchResult{
		{
			Name: "cluster.Scenario/events/n=100k-sparse", Runs: 1, NsPerOp: evNs,
			EventsPerSec: float64(ev.Steps) / (float64(evNs) / 1e9),
			SpeedupX:     speedup,
		},
		{
			Name: "cluster.Scenario/ticks/n=100k-sparse", Runs: 1, NsPerOp: tickNs,
			EventsPerSec: float64(tick.Steps) / (float64(tickNs) / 1e9),
		},
	}, nil
}

func runBenchDes(seed int64, out string) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s-des.json", time.Now().Format("2006-01-02"))
	}
	report := newBenchReport("des", seed)
	add := func(res benchResult, err error) error {
		if err != nil {
			return err
		}
		extra := ""
		if res.EventsPerSec > 0 {
			extra = fmt.Sprintf("  %12.0f events/s", res.EventsPerSec)
		}
		if res.SpeedupX > 0 {
			extra += fmt.Sprintf("  %8.1fx vs ticks", res.SpeedupX)
		}
		fmt.Printf("  %-38s %9d runs  %10d ns/op  %3d allocs/op%s\n",
			res.Name, res.Runs, res.NsPerOp, res.AllocsPerOp, extra)
		report.Results = append(report.Results, res)
		return nil
	}

	if err := add(benchDesHeap()); err != nil {
		return err
	}
	for _, k := range []int{2, 8, 64} {
		if err := add(benchSchedulerMerge(k, seed)); err != nil {
			return err
		}
	}
	if err := add(benchDessimEvents(seed)); err != nil {
		return err
	}
	pair, err := benchSparseScenario(seed)
	if err != nil {
		return err
	}
	for _, res := range pair {
		if err := add(res, nil); err != nil {
			return err
		}
	}

	// The desscale experiment's wall-clock companion rows come from the
	// registry path; time the quick table once for the record.
	res, err := measure("experiment/desscale", 100*time.Millisecond, 2, func() error {
		_, err := experiments.DesScale(experiments.Quick, seed)
		return err
	})
	if err := add(res, err); err != nil {
		return err
	}

	return writeBenchReport(out, &report)
}
