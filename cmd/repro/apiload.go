package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"powercap/internal/ctlplane"
	"powercap/internal/diba"
	"powercap/internal/stats"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// repro apiload: the control plane's load harness and its gates. It stands
// up n in-process daemons (flat DiBA agents over a ChanNetwork, each with a
// StatePub and a ctlplane.Server on a loopback port), paces them at a fixed
// round interval, and measures the serving paths against the live cluster:
//
//   - snapshot read path: allocations per read on a quiescent cluster
//     (hard gate: 0 allocs/op) and aggregate reads/sec across daemons
//     while the cluster runs under full mixed load (hard gate: >= 1M/s,
//     p99 under target);
//   - HTTP path: GET /v1/caps, /v1/health and /metrics over loopback
//     with keep-alive clients, p50/p99/p999 from per-worker latency
//     histograms merged at the end;
//   - perturbation: rounds/sec with and without load (hard gate: <= 10%
//     degradation);
//   - writes: budget updates posted to every daemon mid-load, and after
//     the load stops every budget view must reconcile to exactly the
//     final posted budget with conservation (sum e = sum p - B) restored.
//
// Any gate violation fails the command, so this doubles as the CI smoke
// test for the control plane. Results go to BENCH_<date>-api.json.

const (
	apiHotP99Target  = time.Millisecond        // snapshot read path
	apiHTTPP99Target = 250 * time.Millisecond  // full HTTP round trip, 1-CPU CI
	apiMinReadsPerSec = 1e6
	apiMaxDegradation = 0.10
)

type apiNode struct {
	agent *diba.Agent
	srv   *ctlplane.Server
}

type apiCluster struct {
	nodes    []*apiNode
	eps      []diba.Transport
	budget   float64
	interval time.Duration
}

// newAPICluster builds the n-daemon ring. Each daemon owns its agent, its
// publication slot, and a control-plane server listening on loopback.
func newAPICluster(n int, interval time.Duration, seed int64) (*apiCluster, error) {
	g := topology.Ring(n)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return nil, err
	}
	us := a.UtilitySlice()
	budget := 170 * float64(n)
	var totalIdle float64
	for _, u := range us {
		totalIdle += u.MinPower()
	}
	net := diba.NewChanNetwork(n, 4*(g.MaxDegree()+1))
	c := &apiCluster{budget: budget, interval: interval}
	for i := 0; i < n; i++ {
		ep := net.Endpoint(i)
		ag, err := diba.NewAgent(i, g.NeighborsInts(i), us[i], budget, n, totalIdle, diba.Config{}, ep)
		if err != nil {
			return nil, err
		}
		pub := new(diba.StatePub)
		ag.PublishState(pub)
		srv := ctlplane.New(ctlplane.Config{Node: i, Workload: "hpc", Pub: pub, BudgetW: budget})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, &apiNode{agent: ag, srv: srv})
		c.eps = append(c.eps, ep)
	}
	return c, nil
}

// apply is the round-boundary command sink for one daemon: the same mapping
// cmd/dibad uses, so the harness exercises the deployed semantics.
func (c *apiCluster) apply(a *diba.Agent) func(ctlplane.Command) error {
	n := len(c.nodes)
	return func(cmd ctlplane.Command) error {
		switch cmd.Kind {
		case ctlplane.CmdSetBudget:
			a.SetBudgetDelta(cmd.BudgetW-a.Budget(), n)
		case ctlplane.CmdShed:
			a.SetBudgetDelta(-cmd.Frac*a.Budget(), n)
		}
		return nil
	}
}

// runRounds drives every agent through r paced BSP rounds (draining queued
// commands at each round boundary) and returns the wall-clock elapsed.
func (c *apiCluster) runRounds(r int) (time.Duration, error) {
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	start := time.Now()
	for i, nd := range c.nodes {
		wg.Add(1)
		go func(i int, nd *apiNode) {
			defer wg.Done()
			apply := c.apply(nd.agent)
			for k := 0; k < r; k++ {
				nd.srv.Drain(apply)
				if err := nd.agent.StepOnce(); err != nil {
					errs[i] = err
					return
				}
				time.Sleep(c.interval)
			}
		}(i, nd)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return elapsed, fmt.Errorf("agent %d: %w", i, err)
		}
	}
	return elapsed, nil
}

func (c *apiCluster) shutdown() error {
	var firstErr error
	for _, nd := range c.nodes {
		if err := nd.srv.Shutdown(2 * time.Second); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, ep := range c.eps {
		if err := ep.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// apiLoadGen is the mixed read/write load: hot-path snapshot readers,
// loopback HTTP readers, and a budget writer posting to every daemon.
type apiLoadGen struct {
	c    *apiCluster
	stop chan struct{}
	wg   sync.WaitGroup

	hotOps    atomic.Int64
	httpReads atomic.Int64
	writes    atomic.Int64
	errs      atomic.Int64
	lastErr   atomic.Value // string

	mu       sync.Mutex
	hotHist  stats.LatencyHist
	httpHist stats.LatencyHist
}

func (l *apiLoadGen) fail(err error) {
	l.errs.Add(1)
	l.lastErr.Store(err.Error())
}

func (l *apiLoadGen) stopped() bool {
	select {
	case <-l.stop:
		return true
	default:
		return false
	}
}

// hotReader hammers Server.CapsBody round-robin across daemons: the
// pointer-load serving path with no HTTP in front. Every 64th read is
// timed into the latency histogram; a periodic Gosched keeps the spin loop
// from starving the paced agents on a single P.
func (l *apiLoadGen) hotReader() {
	defer l.wg.Done()
	var h stats.LatencyHist
	nodes := l.c.nodes
	ops := 0
	for !l.stopped() {
		nd := nodes[ops%len(nodes)]
		if ops%64 == 0 {
			t0 := time.Now()
			body := nd.srv.CapsBody()
			h.Record(time.Since(t0))
			if len(body) == 0 {
				l.fail(fmt.Errorf("empty caps body from node %d", ops%len(nodes)))
				return
			}
		} else {
			_ = nd.srv.CapsBody()
		}
		ops++
		if ops%256 == 0 {
			runtime.Gosched()
		}
	}
	l.hotOps.Add(int64(ops))
	l.mu.Lock()
	l.hotHist.Merge(&h)
	l.mu.Unlock()
}

// httpReader issues real loopback GETs with a keep-alive client, mostly
// /v1/caps with periodic /v1/health and /metrics, timing the full round
// trip including reading the body.
func (l *apiLoadGen) httpReader(client *http.Client) {
	defer l.wg.Done()
	var h stats.LatencyHist
	nodes := l.c.nodes
	paths := []string{"/v1/caps", "/v1/caps", "/v1/caps", "/v1/health", "/metrics"}
	ops := 0
	for !l.stopped() {
		nd := nodes[ops%len(nodes)]
		url := "http://" + nd.srv.Addr() + paths[ops%len(paths)]
		t0 := time.Now()
		resp, err := client.Get(url)
		if err != nil {
			l.fail(err)
			return
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		h.Record(time.Since(t0))
		if cerr != nil {
			l.fail(fmt.Errorf("GET %s: truncated body: %w", url, cerr))
			return
		}
		if resp.StatusCode != http.StatusOK {
			l.fail(fmt.Errorf("GET %s: status %d", url, resp.StatusCode))
			return
		}
		ops++
	}
	l.httpReads.Add(int64(ops))
	l.mu.Lock()
	l.httpHist.Merge(&h)
	l.mu.Unlock()
}

// writer posts a fresh cluster budget to every daemon each write round —
// the documented operator contract — cycling integer-watt values below the
// configured budget so the final reconciliation is exact in float64.
func (l *apiLoadGen) writer(client *http.Client) {
	defer l.wg.Done()
	round := 0
	for !l.stopped() {
		b := l.c.budget - float64(10+round%4*10)
		body := fmt.Sprintf(`{"budget_w":%g}`, b)
		for _, nd := range l.c.nodes {
			resp, err := client.Post("http://"+nd.srv.Addr()+"/v1/budget",
				"application/json", strings.NewReader(body))
			if err != nil {
				l.fail(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				l.fail(fmt.Errorf("POST /v1/budget: status %d", resp.StatusCode))
				return
			}
			l.writes.Add(1)
		}
		round++
		time.Sleep(5 * time.Millisecond)
	}
}

// postBudgetAll posts the same budget to every daemon, the operator
// contract for a cluster-wide budget change.
func postBudgetAll(c *apiCluster, client *http.Client, b float64) error {
	body := fmt.Sprintf(`{"budget_w":%g}`, b)
	for i, nd := range c.nodes {
		resp, err := client.Post("http://"+nd.srv.Addr()+"/v1/budget",
			"application/json", strings.NewReader(body))
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("node %d: POST /v1/budget status %d", i, resp.StatusCode)
		}
	}
	return nil
}

func quantsUs(h *stats.LatencyHist) (p50, p99, p999 float64) {
	return float64(h.Quantile(0.50)) / 1e3,
		float64(h.Quantile(0.99)) / 1e3,
		float64(h.Quantile(0.999)) / 1e3
}

func runAPILoad(seed int64, out string, n int, phaseDur, interval time.Duration) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s-api.json", time.Now().Format("2006-01-02"))
	}
	if n < 2 {
		return fmt.Errorf("apiload: need at least 2 daemons, got %d", n)
	}
	report := newBenchReport("api", seed)
	add := func(res benchResult) {
		extra := ""
		if res.QPS > 0 {
			extra = fmt.Sprintf("  %12.0f qps", res.QPS)
		}
		if res.P99Us > 0 {
			extra += fmt.Sprintf("  p99 %10.3f us", res.P99Us)
		}
		if res.RoundsPerSec > 0 {
			extra += fmt.Sprintf("  %8.1f rounds/s", res.RoundsPerSec)
		}
		fmt.Printf("  %-30s%s\n", res.Name, extra)
		report.Results = append(report.Results, res)
	}

	goroutines0 := runtime.NumGoroutine()
	c, err := newAPICluster(n, interval, seed)
	if err != nil {
		return err
	}
	defer c.shutdown()

	// Warm-up rounds give every daemon a real snapshot and settle the
	// body caches before anything is measured.
	if _, err := c.runRounds(10); err != nil {
		return err
	}

	// Gate 1: zero allocations on the snapshot read path. Measured on the
	// quiescent cluster so the only allocator activity in the window is the
	// read loop itself; integer division matches measure()'s convention.
	runtime.GC()
	const allocOps = 1_000_000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for k := 0; k < allocOps; k++ {
		if len(c.nodes[k%n].srv.CapsBody()) == 0 {
			return fmt.Errorf("apiload: empty caps body during alloc probe")
		}
	}
	readNs := time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&after)
	allocsPerOp := (after.Mallocs - before.Mallocs) / allocOps
	add(benchResult{
		Name: "ctlplane.CapsBody/quiescent", Runs: allocOps,
		NsPerOp:     readNs / allocOps,
		AllocsPerOp: allocsPerOp,
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / allocOps,
		QPS:         float64(allocOps) / (float64(readNs) / 1e9),
	})
	if allocsPerOp != 0 {
		return fmt.Errorf("apiload: snapshot read path allocates %d allocs/op (gate: 0)", allocsPerOp)
	}

	// Baseline: rounds/sec with no load at all.
	rounds := int(phaseDur / interval)
	if rounds < 20 {
		rounds = 20
	}
	baseElapsed, err := c.runRounds(rounds)
	if err != nil {
		return err
	}
	baseRPS := float64(rounds) / baseElapsed.Seconds()
	add(benchResult{
		Name: fmt.Sprintf("cluster.rounds/unloaded/n=%d", n), Runs: rounds,
		NsPerOp: baseElapsed.Nanoseconds() / int64(rounds), RoundsPerSec: baseRPS,
	})

	// Loaded phase: full mixed read/write load while the cluster runs the
	// same number of paced rounds.
	client := &http.Client{Timeout: 5 * time.Second}
	gen := &apiLoadGen{c: c, stop: make(chan struct{})}
	for i := 0; i < 2; i++ {
		gen.wg.Add(1)
		go gen.hotReader()
	}
	for i := 0; i < 2; i++ {
		gen.wg.Add(1)
		go gen.httpReader(client)
	}
	gen.wg.Add(1)
	go gen.writer(client)

	loadStart := time.Now()
	loadedElapsed, err := c.runRounds(rounds)
	close(gen.stop)
	gen.wg.Wait()
	loadWindow := time.Since(loadStart)
	if err != nil {
		return err
	}
	if e := gen.errs.Load(); e != 0 {
		return fmt.Errorf("apiload: %d load-worker errors (last: %v)", e, gen.lastErr.Load())
	}
	loadedRPS := float64(rounds) / loadedElapsed.Seconds()

	hotOps, httpReads, writes := gen.hotOps.Load(), gen.httpReads.Load(), gen.writes.Load()
	readQPS := float64(hotOps+httpReads) / loadWindow.Seconds()
	hotP50, hotP99, hotP999 := quantsUs(&gen.hotHist)
	add(benchResult{
		Name: fmt.Sprintf("ctlplane.reads/loaded/n=%d", n), Runs: int(hotOps + httpReads),
		QPS: readQPS, P50Us: hotP50, P99Us: hotP99, P999Us: hotP999,
	})
	httpP50, httpP99, httpP999 := quantsUs(&gen.httpHist)
	add(benchResult{
		Name: "ctlplane.http/GET/loopback", Runs: int(httpReads),
		QPS:   float64(httpReads) / loadWindow.Seconds(),
		P50Us: httpP50, P99Us: httpP99, P999Us: httpP999,
	})
	add(benchResult{
		Name: "ctlplane.http/POST-budget", Runs: int(writes),
		QPS: float64(writes) / loadWindow.Seconds(),
	})
	add(benchResult{
		Name: fmt.Sprintf("cluster.rounds/loaded/n=%d", n), Runs: rounds,
		NsPerOp: loadedElapsed.Nanoseconds() / int64(rounds), RoundsPerSec: loadedRPS,
		SpeedupX: loadedRPS / baseRPS,
	})

	// Gates 2-4: aggregate read throughput, read-path p99, perturbation.
	if httpReads == 0 || writes == 0 {
		return fmt.Errorf("apiload: degenerate load mix (http reads %d, writes %d)", httpReads, writes)
	}
	if readQPS < apiMinReadsPerSec {
		return fmt.Errorf("apiload: aggregate snapshot reads %.0f/s below gate %.0f/s", readQPS, apiMinReadsPerSec)
	}
	if p99 := time.Duration(hotP99 * 1e3); p99 > apiHotP99Target {
		return fmt.Errorf("apiload: snapshot read p99 %v exceeds target %v", p99, apiHotP99Target)
	}
	if deg := 1 - loadedRPS/baseRPS; deg > apiMaxDegradation {
		return fmt.Errorf("apiload: rounds/sec degraded %.1f%% under load (gate %.0f%%): %.1f -> %.1f",
			100*deg, 100*apiMaxDegradation, baseRPS, loadedRPS)
	}
	if httpP99 > float64(apiHTTPP99Target)/1e3 {
		fmt.Printf("  warning: HTTP p99 %.1f ms over soft target %v (loopback, shared CPU)\n",
			httpP99/1e3, apiHTTPP99Target)
	}

	// Gate 5: with the load gone, set the final budget everywhere and let
	// the cluster drain it. Every budget view must land on exactly the
	// posted value and conservation must hold over the published views.
	finalBudget := c.budget - 20
	if err := postBudgetAll(c, client, finalBudget); err != nil {
		return err
	}
	client.CloseIdleConnections()
	if _, err := c.runRounds(10); err != nil {
		return err
	}
	var sumE, sumP float64
	for i, nd := range c.nodes {
		if got := nd.agent.Budget(); got != finalBudget {
			return fmt.Errorf("apiload: node %d budget view %.6f != posted %.6f after load", i, got, finalBudget)
		}
		sumE += nd.agent.Estimate()
		sumP += nd.agent.Power()
	}
	gap := math.Abs(sumE - (sumP - finalBudget))
	if gap > 1e-6 {
		return fmt.Errorf("apiload: conservation gap %.3g W after reconciliation (gate 1e-6)", gap)
	}
	add(benchResult{
		Name: fmt.Sprintf("cluster.reconcile/n=%d", n), Runs: 1, GapW: gap,
	})

	// Gate 6: everything we started must wind down — servers, agents,
	// endpoints — leaving no goroutine behind.
	if err := c.shutdown(); err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= goroutines0+2 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("apiload: goroutine leak: %d now vs %d at start", runtime.NumGoroutine(), goroutines0)
		}
		time.Sleep(20 * time.Millisecond)
	}

	return writeBenchReport(out, &report)
}
