package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powercap/internal/experiments"
)

func TestRegistryCoversDesignIndex(t *testing.T) {
	// Every experiment the DESIGN.md index names must be runnable.
	for _, id := range []string{
		"fig4.2", "fig4.3", "table4.2", "fig4.4", "fig4.5", "fig4.6",
		"fig4.7", "fig4.8", "fig4.9", "fig4.10",
		"table3.2", "fig3.1", "fig3.4", "fig3.5", "fig3.7", "fig3.10", "fig3.11", "fig3.12", "fig3.13", "fig3.14",
		"table5.2", "fig5.2", "fig5.3", "fig5.4", "fig5.5", "fig5.7",
		"ablation", "failure", "async", "hierarchy", "desscale", "hierscale", "hierfail", "fxplore", "grayfail", "safety", "scaling", "sensorchaos",
	} {
		if _, ok := registry[id]; !ok {
			t.Fatalf("experiment %q missing from the registry", id)
		}
	}
	if len(registry) != 38 {
		t.Fatalf("registry has %d entries; update this test when adding experiments", len(registry))
	}
}

func TestIDsSorted(t *testing.T) {
	got := ids()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("ids not sorted: %q before %q", got[i-1], got[i])
		}
	}
}

func TestRenderChartNumericTable(t *testing.T) {
	tab := experiments.Table{
		ID:      "demo",
		Columns: []string{"x", "label", "y1", "y2"},
	}
	tab.AddRow(1, "a", 10.0, 11.0)
	tab.AddRow(2, "b", 20.0, 19.0)
	tab.AddRow(3, "c", 30.0, 31.0)
	out := renderChart(tab)
	if out == "" {
		t.Fatal("numeric table must render")
	}
	if !strings.Contains(out, "* y1") || !strings.Contains(out, "o y2") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if strings.Contains(out, "label") {
		t.Fatal("non-numeric column must not be plotted")
	}
}

func TestRenderChartScaleFilter(t *testing.T) {
	tab := experiments.Table{ID: "demo", Columns: []string{"x", "snp", "pct"}}
	tab.AddRow(1, 0.90, 500.0)
	tab.AddRow(2, 0.95, 300.0)
	out := renderChart(tab)
	if !strings.Contains(out, "* snp") {
		t.Fatal("anchor series missing")
	}
	if strings.Contains(out, "pct") {
		t.Fatal("wild-scale series must be filtered out")
	}
}

func TestRenderChartNothingNumeric(t *testing.T) {
	tab := experiments.Table{ID: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("x", "y")
	tab.AddRow("z", "w")
	if out := renderChart(tab); out != "" {
		t.Fatalf("non-numeric table must not render, got %q", out)
	}
	one := experiments.Table{ID: "demo", Columns: []string{"a"}}
	one.AddRow(1.0)
	if out := renderChart(one); out != "" {
		t.Fatal("single-column table must not render")
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	tab := experiments.Table{ID: "demo", Columns: []string{"a"}, Notes: []string{"n"}}
	tab.AddRow(1)
	if err := writeCSV(dir, "demo", tab); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\n1\n# n\n" {
		t.Fatalf("csv = %q", data)
	}
}
