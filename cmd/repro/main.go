// Command repro regenerates the tables and figures of the reproduced
// evaluation. Each experiment id (see DESIGN.md's per-experiment index)
// maps to one subcommand:
//
//	repro [-full] [-seed N] [-j N] all
//	repro [-full] [-seed N] fig4.3 table4.2 ...
//	repro bench
//	repro apiload
//	repro list
//
// By default experiments run at the Quick scale (smaller clusters, same
// qualitative shapes); -full selects the paper's parameters and can take
// many minutes for the large knapsack and DiBA runs. -j runs experiments
// (and their internal sweeps) on that many workers; all modeled output is
// byte-identical at any -j, only wall-clock time and the measured-timing
// cells change. bench writes a machine-readable BENCH_<date>.json baseline;
// apiload load-tests the control plane against a live in-process cluster
// and writes BENCH_<date>-api.json with hard perf gates.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"powercap/internal/asciiplot"
	"powercap/internal/experiments"
	"powercap/internal/parallel"
)

type runner func(scale experiments.Scale, seed int64) (experiments.Table, error)

var registry = map[string]runner{
	"fig4.2": func(experiments.Scale, int64) (experiments.Table, error) { return experiments.Fig42() },
	"fig4.3": experiments.Fig43,
	"table4.2": func(s experiments.Scale, seed int64) (experiments.Table, error) {
		return experiments.Table42(s, seed)
	},
	"fig4.4": experiments.Fig44,
	"fig4.5": experiments.Fig45,
	"fig4.6": experiments.Fig46,
	"fig4.7": experiments.Fig47,
	"fig4.8": func(_ experiments.Scale, seed int64) (experiments.Table, error) {
		return experiments.Fig48(seed)
	},
	"fig4.9": func(_ experiments.Scale, seed int64) (experiments.Table, error) {
		return experiments.Fig49(seed)
	},
	"fig4.10":  experiments.Fig410,
	"table3.2": experiments.Table32,
	"fig3.1": func(_ experiments.Scale, seed int64) (experiments.Table, error) {
		return experiments.Fig31(seed)
	},
	"fig3.5":      experiments.Fig35,
	"fig3.7":      experiments.Fig37,
	"fig5.2":      experiments.Fig52,
	"fig5.3":      experiments.Fig53,
	"fig3.4":      experiments.Fig34,
	"fig3.10":     experiments.Fig310,
	"fig3.11":     experiments.Fig311,
	"fig3.12":     experiments.Fig312,
	"fig3.13":     experiments.Fig313,
	"fig3.14":     experiments.Fig314,
	"table5.2":    experiments.Table52,
	"ablation":    experiments.Ablation,
	"failure":     experiments.Failure,
	"async":       experiments.Async,
	"hierarchy":   experiments.Hierarchy,
	"desscale":    experiments.DesScale,
	"hierscale":   experiments.HierScale,
	"hierfail":    experiments.HierFail,
	"grayfail":    experiments.GrayFail,
	"fxplore":     experiments.FXplore,
	"safety":      experiments.Safety,
	"scaling":     experiments.Scaling,
	"sensorchaos": experiments.SensorChaos,
	"fig5.4":      experiments.Fig54,
	"fig5.5":      experiments.Fig55,
	"fig5.7":      experiments.Fig57,
}

func ids() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func main() {
	os.Exit(run())
}

func run() int {
	full := flag.Bool("full", false, "run at the paper's full scale (slow)")
	seed := flag.Int64("seed", 1, "random seed")
	csvDir := flag.String("csv", "", "also write each result as <dir>/<id>.csv")
	plot := flag.Bool("plot", false, "render figures as ASCII line charts below each table")
	jobs := flag.Int("j", 0, "worker count for experiments and their sweeps (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchOut := flag.String("benchout", "", "bench/apiload: output path (default BENCH_<date>[-series].json)")
	benchTagFlag := flag.String("tag", "", "bench/apiload: free-form label recorded in the JSON report")
	hierN := flag.Int("hiern", 10000, "bench: largest hierarchical-engine cluster to time (series 1k/10k/100k/1M)")
	desBench := flag.Bool("des", false, "bench: run the shared-clock event-core series instead (writes BENCH_<date>-des.json)")
	grayBench := flag.Bool("gray", false, "bench: run the gray-failure tolerance gates instead (writes BENCH_<date>-gray.json)")
	apiN := flag.Int("apin", 5, "apiload: daemon count")
	apiDur := flag.Duration("apidur", 2*time.Second, "apiload: length of each measured load phase")
	apiRound := flag.Duration("apiround", 5*time.Millisecond, "apiload: cluster round pacing interval")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro [-full] [-seed N] [-j N] <experiment ids...|all|bench|apiload|list>\n\nexperiments:\n")
		for _, id := range ids() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return 2
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	parallel.SetWorkers(*jobs)
	benchTag = *benchTagFlag

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "repro: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			}
		}()
	}

	var selected []string
	switch args[0] {
	case "list":
		for _, id := range ids() {
			fmt.Println(id)
		}
		return 0
	case "bench":
		if *grayBench {
			if err := runBenchGray(*seed, *benchOut); err != nil {
				fmt.Fprintf(os.Stderr, "repro: bench -gray: %v\n", err)
				return 1
			}
			return 0
		}
		if *desBench {
			if err := runBenchDes(*seed, *benchOut); err != nil {
				fmt.Fprintf(os.Stderr, "repro: bench -des: %v\n", err)
				return 1
			}
			return 0
		}
		if err := runBench(scale, *seed, *benchOut, *hierN); err != nil {
			fmt.Fprintf(os.Stderr, "repro: bench: %v\n", err)
			return 1
		}
		return 0
	case "apiload":
		if err := runAPILoad(*seed, *benchOut, *apiN, *apiDur, *apiRound); err != nil {
			fmt.Fprintf(os.Stderr, "repro: apiload: %v\n", err)
			return 1
		}
		return 0
	case "all":
		selected = ids()
	default:
		selected = args
	}

	exit := 0
	var runJobs []experiments.Job
	for _, id := range selected {
		r, ok := registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (try 'repro list')\n", id)
			exit = 1
			continue
		}
		id := id
		runJobs = append(runJobs, experiments.Job{ID: id, Run: func() (experiments.Table, error) {
			return r(scale, *seed)
		}})
	}
	experiments.RunJobs(runJobs, func(res experiments.JobResult) {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s failed: %v\n", res.ID, res.Err)
			exit = 1
			return
		}
		res.Table.Fprint(os.Stdout)
		if *plot {
			if chart := renderChart(res.Table); chart != "" {
				fmt.Println(chart)
			}
		}
		fmt.Printf("  (%s in %v)\n\n", res.ID, res.Elapsed.Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res.ID, res.Table); err != nil {
				fmt.Fprintf(os.Stderr, "repro: writing %s.csv: %v\n", res.ID, err)
				exit = 1
			}
		}
	})
	return exit
}

// renderChart plots the table's numeric columns against its first numeric
// column. Tables without at least two numeric columns render nothing.
func renderChart(t experiments.Table) string {
	if len(t.Rows) < 2 {
		return ""
	}
	numeric := func(col int) ([]float64, bool) {
		out := make([]float64, len(t.Rows))
		for r, row := range t.Rows {
			if col >= len(row) {
				return nil, false
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(row[col]), 64)
			if err != nil {
				return nil, false
			}
			out[r] = v
		}
		return out, true
	}
	var x []float64
	xCol := -1
	for c := range t.Columns {
		if vals, ok := numeric(c); ok {
			x, xCol = vals, c
			break
		}
	}
	if xCol < 0 {
		return ""
	}
	// Anchor the Y axis on the first numeric column after X and only plot
	// columns on a comparable scale, so e.g. percentage columns don't
	// squash SNP curves.
	var series []asciiplot.Series
	var lo, hi float64
	for c := xCol + 1; c < len(t.Columns); c++ {
		vals, ok := numeric(c)
		if !ok {
			continue
		}
		vMin, vMax := vals[0], vals[0]
		for _, v := range vals {
			if v < vMin {
				vMin = v
			}
			if v > vMax {
				vMax = v
			}
		}
		if len(series) == 0 {
			lo, hi = vMin, vMax
		} else {
			span := hi - lo
			if span == 0 {
				span = 1
			}
			if vMin < lo-2*span || vMax > hi+2*span {
				continue // different scale; skip
			}
		}
		series = append(series, asciiplot.Series{Name: t.Columns[c], X: x, Y: vals})
	}
	if len(series) == 0 {
		return ""
	}
	return asciiplot.Render(series, asciiplot.Options{
		Title: fmt.Sprintf("  %s vs %s", t.ID, t.Columns[xCol]),
	})
}

func writeCSV(dir, id string, t experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
