package main

import (
	"fmt"
	"math/rand"
	"time"

	"powercap/internal/diba"
	"powercap/internal/topology"
	"powercap/internal/workload"
)

// repro bench -gray: the gray-failure tolerance baseline and its gates.
// Two series, both written to BENCH_<date>-gray.json:
//
//   - The deterministic virtual-slot model (diba.RunGraySim) at σ ∈
//     {5, 10, 20}, fixed vs tolerant. Hard gates: the tolerant run has
//     ≥ 5x fewer stalled node-rounds than the fixed baseline, every
//     stale substitution settles (outstanding = 0), and the budget
//     identity |Σe − (Σp − B)| closes to ≤ 1e-9 in both regimes.
//   - A real-agent ring over ChanNetwork + FaultTransport with one
//     degraded node (every lane touching it delayed 10× the adaptive
//     deadline floor). Hard gates: no agent declares any death — in
//     particular the slow-but-beaconing node — and every budget view
//     stays at the full cluster budget. Soft gate: the tolerant run
//     beats the fixed-deadline run by ≥ 1.5x wall clock (reported as
//     SpeedupX; a miss prints a warning, timing on shared CI is noisy).
//
// Any hard-gate violation fails the command, so this doubles as the CI
// smoke test for the straggler-mitigation path.

// benchGraySim runs one virtual-slot configuration and reports the stall
// and conservation counters alongside the wall-clock cost of the model.
func benchGraySim(n, sigma, rounds int, tolerant bool, us []workload.Utility, budget float64) (benchResult, diba.GraySimResult, error) {
	mode := "fixed"
	if tolerant {
		mode = "tolerant"
	}
	name := fmt.Sprintf("graysim/%s/sigma=%d", mode, sigma)
	start := time.Now()
	res, err := diba.RunGraySim(diba.GraySimConfig{
		N: n, Slow: n / 3, Sigma: sigma, Tolerant: tolerant,
		Rounds: rounds, BudgetW: budget, Util: us,
	})
	if err != nil {
		return benchResult{}, res, fmt.Errorf("%s: %w", name, err)
	}
	return benchResult{
		Name: name, Runs: 1, NsPerOp: time.Since(start).Nanoseconds(),
		StalledRounds: res.StalledRounds,
		Mitigations:   res.Substituted + res.SoftExcluded,
		SlotsPerRound: res.SlotsPerRound,
		GapW:          res.MaxAbsGap,
	}, res, nil
}

// benchGrayAgents runs the real-agent degraded-node scenario once with the
// given policy and returns the wall clock plus the final states.
func benchGrayAgents(n, rounds, slow int, delay time.Duration, fp diba.FaultPolicy, seed int64) (time.Duration, []diba.AgentState, error) {
	g := topology.Ring(n)
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return 0, nil, err
	}
	plan := &diba.FaultPlan{
		Seed:      seed,
		SlowNodes: map[int]diba.SlowSpec{slow: {Delay: delay}},
	}
	start := time.Now()
	states, err := diba.RunAgentsUnderFaults(g, a.UtilitySlice(), 170*float64(n),
		diba.Config{}, rounds, plan, fp, nil)
	return time.Since(start), states, err
}

func runBenchGray(seed int64, out string) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s-gray.json", time.Now().Format("2006-01-02"))
	}
	report := newBenchReport("gray", seed)
	add := func(res benchResult) {
		extra := ""
		if res.SpeedupX > 0 {
			extra = fmt.Sprintf("  %6.1fx vs fixed", res.SpeedupX)
		}
		fmt.Printf("  %-28s %5d runs  %12d ns/op  %6d stalled%s\n",
			res.Name, res.Runs, res.NsPerOp, res.StalledRounds, extra)
		report.Results = append(report.Results, res)
	}

	// Virtual-slot model: the pinnable form of the claim, hard-gated.
	const n, rounds = 16, 400
	rng := rand.New(rand.NewSource(seed))
	a, err := workload.Assign(workload.HPC, n, workload.DefaultServer, 0.05, 0, rng)
	if err != nil {
		return err
	}
	us := a.UtilitySlice()
	for _, sigma := range []int{5, 10, 20} {
		fixedRes, fixed, err := benchGraySim(n, sigma, rounds, false, us, 170.0*n)
		if err != nil {
			return err
		}
		add(fixedRes)
		tolRes, tol, err := benchGraySim(n, sigma, rounds, true, us, 170.0*n)
		if err != nil {
			return err
		}
		add(tolRes)
		if 5*tol.StalledRounds > fixed.StalledRounds {
			return fmt.Errorf("graysim sigma=%d: tolerant stalled %d node-rounds vs fixed %d (want >= 5x fewer)",
				sigma, tol.StalledRounds, fixed.StalledRounds)
		}
		for _, r := range []diba.GraySimResult{fixed, tol} {
			if r.Outstanding != 0 {
				return fmt.Errorf("graysim sigma=%d: %d stale records never settled", sigma, r.Outstanding)
			}
			if r.MaxAbsGap > 1e-9 {
				return fmt.Errorf("graysim sigma=%d: conservation gap %.3g exceeds 1e-9", sigma, r.MaxAbsGap)
			}
			if r.SlowDeclaredDead {
				return fmt.Errorf("graysim sigma=%d: the alive slow node was declared dead", sigma)
			}
		}
	}

	// Real agents: one degraded node, fixed vs tolerant policy, same seed.
	const (
		agentN      = 8
		agentRounds = 60
		slowNode    = 3
		slowDelay   = 8 * time.Millisecond
		gatherTO    = 40 * time.Millisecond
	)
	base := diba.FaultPolicy{
		GatherTimeout:  gatherTO,
		HeartbeatGrace: 250 * time.Millisecond,
		Recover:        true,
	}
	// The adaptive deadline tracks each peer's observed RTT, so a
	// persistently slow peer would simply earn more patience; DeadlineMax
	// is the operator's ceiling on per-round waiting, and setting it below
	// the injected delay is what turns the slowness into mitigations.
	tolPol := base
	tolPol.StragglerTolerant = true
	tolPol.DeadlineMax = slowDelay / 2

	fixedDur, fixedStates, err := benchGrayAgents(agentN, agentRounds, slowNode, slowDelay, base, seed)
	if err != nil {
		return fmt.Errorf("gray agents (fixed): %w", err)
	}
	tolDur, tolStates, err := benchGrayAgents(agentN, agentRounds, slowNode, slowDelay, tolPol, seed)
	if err != nil {
		return fmt.Errorf("gray agents (tolerant): %w", err)
	}
	for name, states := range map[string][]diba.AgentState{"fixed": fixedStates, "tolerant": tolStates} {
		for _, st := range states {
			if len(st.Dead) != 0 {
				return fmt.Errorf("gray agents (%s): agent %d declared %v dead; the slow node is alive and beaconing",
					name, st.ID, st.Dead)
			}
			if st.Budget != 170.0*agentN {
				return fmt.Errorf("gray agents (%s): agent %d budget view %.3f != %.3f (no death may shrink it)",
					name, st.ID, st.Budget, 170.0*agentN)
			}
		}
	}
	speedup := float64(fixedDur) / float64(tolDur)
	add(benchResult{
		Name: "agents.gray/fixed/n=8", Runs: agentRounds,
		NsPerOp: fixedDur.Nanoseconds() / agentRounds,
	})
	add(benchResult{
		Name: "agents.gray/tolerant/n=8", Runs: agentRounds,
		NsPerOp:  tolDur.Nanoseconds() / agentRounds,
		SpeedupX: speedup,
	})
	if speedup < 1.5 {
		fmt.Printf("  warning: tolerant rounds only %.2fx faster than fixed (soft gate 1.5x; timing-noise sensitive)\n", speedup)
	}

	return writeBenchReport(out, &report)
}
